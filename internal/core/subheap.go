package core

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"poseidon/internal/memblock"
	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
	"poseidon/internal/txn"
)

// errNoFreeBlock is the internal signal that every free list at or above
// the requested class is empty (triggers defragmentation case 1, §5.4).
var errNoFreeBlock = errors.New("poseidon: no free block of requested class")

// noSlotError is the internal signal that the hash table had no slot in the
// probe window of key (triggers defragmentation case 2, §5.4).
type noSlotError struct{ key uint64 }

func (e *noSlotError) Error() string {
	return fmt.Sprintf("poseidon: no hash slot in probe window of %#x", e.key)
}

// subheap is one per-CPU sub-heap (paper §4.1): its own lock, undo log,
// buddy lists and memory-block hash table, all inside its MPK-protected
// metadata region.
type subheap struct {
	id   int
	h    *Heap
	base uint64

	mu     sync.Mutex
	thread *mpk.Thread // the allocator's execution context on this sub-heap
	win    mpk.Window
	mgr    *memblock.Manager
	undo   *plog.UndoLog
	batch  *txn.Batch
	ready  bool // logs opened and persistent structures formatted

	// ring is the remote-free ring's DRAM coordination state; the
	// persistent slots live in the sub-heap header page (shRingOff).
	// Always wired (replay must run even when the current Options leave
	// rings off but the image holds entries from a previous run); armed
	// for producers only under Options.RemoteFreeRings once the
	// persistent slots are in a known state. localOps counts operations
	// under mu and paces the opportunistic drain.
	ring     *memblock.Ring
	localOps uint64

	// freeMask is a DRAM bitmap of the classes whose free list is
	// (probably) non-empty: bit c set means class c may hold a block, so
	// the allocation find loop is one TrailingZeros64 instead of per-class
	// device head reads. It over-approximates — bits are set eagerly at
	// every free-list push and cleared lazily when a head proves empty —
	// and is reseeded from the device after every undo replay, so it can
	// never under-approximate (which would fake an out-of-memory).
	// Guarded by mu. NumClasses never exceeds 48 (the pointer-offset
	// bound), so 64 bits always suffice.
	freeMask uint64

	// quarantined marks a sub-heap taken out of service because its
	// metadata failed recovery or audit (degrade-don't-die): allocations
	// route around it, frees into it are rejected, and its capacity is
	// reported as lost in Stats. qreason (a string) is stored before the
	// flag is published; it is atomic because Repair can return the
	// sub-heap to service and a later corruption re-quarantine it while
	// concurrent error paths read the reason. qmu serializes the
	// check-then-publish in quarantine so two recovery workers benching
	// the same sub-heap simultaneously keep first-reason-wins semantics
	// (and emit exactly one quarantine event).
	qmu         sync.Mutex
	quarantined atomic.Bool
	qreason     atomic.Value

	// mirrorSeq is the sequence number of the newest valid on-device
	// metadata mirror image (mirror.go); mutations counts committed
	// mutations to pace refreshes. DRAM-only, guarded by mu.
	mirrorSeq uint64
	mutations uint64

	// comb is the DRAM flat-combining array (combine.go), non-nil only
	// under Options.CombinedCommits: threads that fail to take mu publish
	// an op descriptor here and the lock holder drains the array, executing
	// every pending op inside one undo transaction with a single
	// seal/flush-fence/truncate train. groupBatches are the pooled per-op
	// staging batches the leader reuses across groups (guarded by mu).
	comb         []atomic.Pointer[combineOp]
	groupBatches []*txn.Batch
	groupUndo    *plog.UndoLog // undo log groupBatches were built against
	groupOps     []*combineOp  // leader's group scratch buffer, guarded by mu
	// Leader-only staging scratch reused across groups (guarded by mu).
	stagedScratch []stagedGroupOp
	batchScratch  []*txn.Batch
	hookScratch   []func() error
	winReader     txn.Reader // s.win boxed once (avoids per-group allocation)

	stats subheapStats

	// rec tags this sub-heap's device traffic with the operation class in
	// flight (retagged under mu); gauge tracks live occupancy. Both are
	// non-nil only when the heap runs with telemetry.
	rec   *nvm.AttrRecorder
	gauge *subheapGauges

	// Watchdog hold-state (watchdog.go), maintained by lockOp/unlockOp only
	// when h.wd is set. Publication order matters: lockOp stores wdOp, bumps
	// wdToken, and stores wdSince LAST, so a watchdog scan that sees a
	// non-zero wdSince observes the op/token of that acquisition. wdHold is
	// owner-only scratch (guarded by mu); stallInject is a one-shot test
	// failpoint armed by Heap.InjectStall.
	wdSince     atomic.Int64  // hold-start UnixNano; 0 = lock not held
	wdOp        atomic.Uint32 // obs.Op in flight
	wdToken     atomic.Uint64 // acquisition counter for stall de-dup
	wdHold      time.Time
	stallInject atomic.Int64 // ns to sleep inside the next lockOp
}

// lockOp acquires the sub-heap lock with metadata rights, timing the wait
// and publishing hold-start state for the stall watchdog. A heap without a
// watchdog pays exactly one nil check over the plain lock sequence.
func (s *subheap) lockOp(op obs.Op) {
	if s.h.wd == nil {
		s.mu.Lock()
		s.h.grant(s.thread)
		return
	}
	start := time.Now()
	s.mu.Lock()
	s.h.grant(s.thread)
	now := time.Now()
	s.h.tel.RecordOn(s.id, obs.OpLockWait, now.Sub(start))
	s.wdHold = now
	s.wdOp.Store(uint32(op))
	s.wdToken.Add(1)
	s.wdSince.Store(now.UnixNano())
	if d := s.stallInject.Swap(0); d > 0 {
		// Armed failpoint: hold the lock long enough for the watchdog.
		time.Sleep(time.Duration(d))
	}
}

// unlockOp is lockOp's release half: clears the hold-start marker, records
// the hold-time histogram, and releases rights and lock.
func (s *subheap) unlockOp() {
	if s.h.wd == nil {
		s.h.revoke(s.thread)
		s.mu.Unlock()
		return
	}
	s.wdSince.Store(0)
	s.h.tel.RecordOn(s.id, obs.OpLockHold, time.Since(s.wdHold))
	s.h.revoke(s.thread)
	s.mu.Unlock()
}

// subheapGauges are DRAM-only occupancy gauges, maintained on the alloc/
// free/merge paths and re-seeded from the persistent records when a
// sub-heap opens. Telemetry-only: without Options.Telemetry no gauge atomics
// are touched.
type subheapGauges struct {
	allocBlocks atomic.Int64
	allocBytes  atomic.Int64
	freeByClass []atomic.Int64 // free-block count per size class
}

// reset zeroes every gauge (before a record-walk reseed).
func (g *subheapGauges) reset() {
	g.allocBlocks.Store(0)
	g.allocBytes.Store(0)
	for i := range g.freeByClass {
		g.freeByClass[i].Store(0)
	}
}

// quarantine takes the sub-heap out of service. Idempotent; the first
// reason wins (until a Repair clears the flag — a re-quarantine then
// records its own, fresh reason).
func (s *subheap) quarantine(reason string) {
	s.qmu.Lock()
	if s.quarantined.Load() {
		s.qmu.Unlock()
		return
	}
	s.qreason.Store(reason)
	s.quarantined.Store(true)
	s.qmu.Unlock()
	s.h.tel.Emit(obs.EventQuarantine, s.id, reason)
	s.h.recomputeHealth()
}

// unquarantine returns a repaired sub-heap to service. Only Repair calls
// this, after the rebuilt metadata passed a full audit.
func (s *subheap) unquarantine() {
	s.quarantined.Store(false)
	s.h.recomputeHealth()
}

func (s *subheap) isQuarantined() bool { return s.quarantined.Load() }

func (s *subheap) quarantineReason() string {
	if !s.quarantined.Load() {
		return ""
	}
	r, _ := s.qreason.Load().(string)
	return r
}

func newSubheap(h *Heap, id int) (*subheap, error) {
	g, err := h.lay.memblockGeometry(id)
	if err != nil {
		return nil, err
	}
	s := &subheap{
		id:     id,
		h:      h,
		base:   h.lay.subheapBase(id),
		thread: h.unit.NewThread(defaultRights(h.opts)),
	}
	s.win = mpk.NewWindow(h.dev, s.thread)
	s.ring = memblock.NewRing(h.lay.ringBase(id))
	if h.opts.CombinedCommits {
		s.comb = make([]atomic.Pointer[combineOp], combineSlots)
	}
	if h.tel != nil {
		s.rec = nvm.NewAttrRecorder(h.tel.Attribution(), nvm.ClassOther)
		s.win = s.win.WithRecorder(s.rec)
		s.gauge = &subheapGauges{freeByClass: make([]atomic.Int64, g.NumClasses)}
	}
	s.winReader = s.win // boxed once: the combine hot path needs the interface
	s.mgr = memblock.NewManager(s.win, g)
	return s, nil
}

// setClass retags this sub-heap's device-traffic attribution. Callers hold
// mu (or run single-threaded), which is the recorder's required
// serialization.
func (s *subheap) setClass(c nvm.OpClass) {
	if s.rec != nil {
		s.rec.SetClass(c)
	}
}

// initializedFlag reads the persistent formatted marker.
func (s *subheap) initializedFlag() (bool, error) {
	v, err := s.win.ReadU64(s.base + shInitializedOff)
	return v == 1, err
}

// readRetry is a metadata read with the heap's transient-retry policy
// attached — used on runtime paths (ring drain/replay, repair) where a
// clearing ECC fault should cost a bounded backoff, not an aborted drain.
func (s *subheap) readRetry(off uint64) (uint64, error) {
	var v uint64
	err := s.h.retry(func() error {
		var e error
		v, e = s.win.ReadU64(off)
		return e
	})
	return v, err
}

// recoverLogs opens the logs of a formatted sub-heap and replays its undo
// log (heap load path, §5.1). Unformatted sub-heaps are left untouched —
// they format lazily on first use, like the paper's first-malloc-on-CPU.
func (s *subheap) recoverLogs() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	init, err := s.initializedFlag()
	if err != nil {
		return err
	}
	if !init {
		return nil
	}
	// A set repair marker means a crash interrupted Repair: the metadata is
	// a half-rebuilt mix we must not serve. Fail quarantinably — recovery
	// benches the sub-heap, and the next Repair runs to completion.
	flag, err := s.win.ReadU64(s.base + shRepairingOff)
	if err != nil {
		return err
	}
	if flag != 0 {
		return fmt.Errorf("%w: interrupted repair", ErrCorruptHeap)
	}
	s.h.grant(s.thread)
	defer s.h.revoke(s.thread)
	s.setClass(nvm.ClassRecovery)
	if err := s.open(true); err != nil {
		return err
	}
	s.seedMirrorSeq()
	if err := s.replayRingLocked(); err != nil {
		return err
	}
	if err := s.reseedFreeMask(); err != nil {
		return err
	}
	s.seedGauges()
	// No mirror refresh here: the header has not been audited yet, and
	// copying a corrupt header over the last good mirror would defeat the
	// restore path. recover() refreshes mirrors after the scrub passes.
	return nil
}

// reseedFreeMask rebuilds the free-list nonempty bitmap from the
// persistent heads. Caller holds mu with metadata rights on a ready
// sub-heap.
func (s *subheap) reseedFreeMask() error {
	g := s.mgr.Geometry()
	var mask uint64
	for c := 0; c < g.NumClasses; c++ {
		head, err := s.mgr.FreeHead(s.win, c)
		if err != nil {
			return err
		}
		if head != 0 {
			mask |= 1 << uint(c)
		}
	}
	s.freeMask = mask
	return nil
}

// open attaches logs and the batch; with replay it also runs undo recovery.
// Caller holds the lock with metadata write rights.
func (s *subheap) open(replay bool) error {
	undo, err := plog.OpenUndoLog(s.win, s.h.lay.undoBase(s.id), s.h.lay.undoSize)
	if err != nil {
		return err
	}
	if replay {
		if err := undo.Replay(); err != nil {
			return err
		}
	}
	s.undo = undo
	s.batch = txn.NewBatch(s.win, undo)
	s.ready = true
	return nil
}

// ensureReady formats the sub-heap on first use. Caller holds the lock with
// metadata write rights.
func (s *subheap) ensureReady() error {
	if s.ready {
		return nil
	}
	init, err := s.initializedFlag()
	if err != nil {
		return err
	}
	if init {
		// Raw-attached heaps (fsck -raw) must see the image untouched:
		// open without replaying the undo log (or the remote-free ring;
		// the ring also stays disarmed, so no producer writes it).
		if err := s.open(!s.h.rawAttach); err != nil {
			return err
		}
		s.seedMirrorSeq()
		if !s.h.rawAttach {
			if err := s.replayRingLocked(); err != nil {
				return err
			}
		}
		if err := s.reseedFreeMask(); err != nil {
			return err
		}
		s.seedGauges()
		return nil
	}
	return s.format()
}

// seedGauges rebuilds the DRAM occupancy gauges from the persistent records.
// Caller holds mu with metadata rights. No-op without telemetry; errors are
// swallowed — gauges are best-effort observability, not correctness state.
func (s *subheap) seedGauges() {
	if s.gauge == nil {
		return
	}
	g := s.mgr.Geometry()
	s.gauge.reset()
	_ = s.mgr.ForEachRecord(s.win, func(rec memblock.Record) error {
		if rec.Status == memblock.StatusAllocated {
			s.gauge.allocBlocks.Add(1)
			s.gauge.allocBytes.Add(int64(rec.Size))
		} else if c, cerr := g.ClassOf(rec.Size); cerr == nil {
			s.gauge.freeByClass[c].Add(1)
		}
		return nil
	})
}

// format creates the persistent structures of a fresh (or half-created)
// sub-heap. The initialized flag is the commit point: a crash mid-format
// reformats from scratch on the next use.
func (s *subheap) format() error {
	s.setClass(nvm.ClassFormat)
	g := s.mgr.Geometry()
	// Zero everything format will touch: header page, undo log region, and
	// the memblock header + free lists + level 0 (higher levels are only
	// written after activation, which happens after the flag commits).
	zeroEnd := g.LevelOff[0] + g.LevelCap[0]*memblock.RecordSize
	if err := s.win.Zero(s.base, zeroEnd-s.base); err != nil {
		return err
	}
	if err := s.win.Flush(s.base, zeroEnd-s.base); err != nil {
		return err
	}
	s.win.Fence()
	if err := s.mgr.Format(); err != nil {
		return err
	}
	if err := s.open(false); err != nil {
		return err
	}
	// Seed the heap: the whole user region is one free block of the
	// largest class.
	slot, err := s.mgr.Insert(s.batch, g.UserBase, g.UserSize, memblock.StatusFree)
	if err != nil {
		return err
	}
	if err := s.mgr.PushFreeTail(s.batch, g.MaxClass(), slot); err != nil {
		return err
	}
	if err := s.batch.Commit(); err != nil {
		return err
	}
	// Commit point.
	if err := s.win.PersistU64(s.base+shInitializedOff, 1); err != nil {
		return err
	}
	s.freeMask = 1 << uint(g.MaxClass())
	s.seedGauges()
	// The ring region was zeroed above; open it for producers.
	s.ring.Reset()
	if s.h.opts.RemoteFreeRings {
		s.ring.Arm()
	}
	// First mirror image of the freshly formatted header (best-effort).
	s.mirrorSeq = 0
	_ = s.updateMirrorLocked()
	return nil
}

// traceBegin opens a sampled op span for this sub-heap: nil (free) unless
// the tracer exists AND elected this operation. The returned closure diffs
// the sub-heap recorder's write/flush/fence totals and must therefore run
// while mu is still held — register its defer AFTER the unlock defer so
// LIFO ordering fires it first.
func (s *subheap) traceBegin(op obs.Op, bytes uint64) func(error) {
	tr := s.h.tracer
	if tr == nil || !tr.Sampled() {
		return nil
	}
	start := time.Now()
	m := s.rec.Mark()
	r0 := s.h.transientRetries.Load()
	return func(err error) {
		d := s.rec.Since(m)
		sp := obs.Span{
			Op:      op,
			Subheap: s.id,
			Lane:    -1,
			StartNS: start.UnixNano(),
			DurNS:   time.Since(start).Nanoseconds(),
			Writes:  d.Writes,
			Flushes: d.Flushes,
			Fences:  d.Fences,
			Retries: s.h.transientRetries.Load() - r0,
			Bytes:   bytes,
		}
		if err != nil {
			sp.Err = err.Error()
		}
		tr.Record(sp)
	}
}

// alloc carves a block of at least size bytes out of this sub-heap and
// returns its device offset (paper §5.2). If lane is non-nil the allocation
// is transactional: its address is persisted to the micro-log lane before
// the undo log truncates (§5.3).
func (s *subheap) alloc(size uint64, lane *plog.MicroLog) (devOff uint64, err error) {
	if s.isQuarantined() {
		return 0, fmt.Errorf("%w: sub-heap %d (%s)", ErrSubheapQuarantined, s.id, s.quarantineReason())
	}
	if s.comb != nil {
		return s.allocCombined(size, lane)
	}
	op := obs.OpAlloc
	if lane != nil {
		op = obs.OpTxAlloc
	}
	s.lockOp(op)
	defer s.unlockOp()
	return s.allocBodyLocked(size, lane)
}

// allocBodyLocked is the legacy per-op allocation body. Caller holds mu with
// metadata rights; both the plain path and the combined mode's uncontended
// fast path land here.
func (s *subheap) allocBodyLocked(size uint64, lane *plog.MicroLog) (devOff uint64, err error) {
	if err := s.ensureReady(); err != nil {
		return 0, err
	}
	// Tag after ensureReady so lazy formatting stays charged to ClassFormat.
	op := obs.OpAlloc
	if lane != nil {
		s.setClass(nvm.ClassTxAlloc)
		op = obs.OpTxAlloc
	} else {
		s.setClass(nvm.ClassAlloc)
	}
	if tdone := s.traceBegin(op, size); tdone != nil {
		defer func() { tdone(err) }()
	}
	// The alloc slow path is a drain point: we already paid for the lock.
	if err := s.maybeDrainLocked(); err != nil {
		return 0, err
	}
	g := s.mgr.Geometry()
	class, err := g.ClassOf(size)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrBadSize, err)
	}
	return s.allocLadderLocked(class, size, lane)
}

// allocLadderLocked is the locked allocation slow-path body: repeated
// single-block attempts with the shared pressure ladder between them.
// Caller holds mu with metadata rights on a ready sub-heap, attribution
// class already set.
func (s *subheap) allocLadderLocked(class int, size uint64, lane *plog.MicroLog) (uint64, error) {
	var p pressure
	for {
		off, err := s.tryAlloc(class, lane)
		if err == nil {
			if lane != nil {
				s.stats.txAllocs.Add(1)
			} else {
				s.stats.allocs.Add(1)
			}
			return off, nil
		}
		retry, err := s.relievePressure(&p, class, err)
		if retry {
			continue
		}
		if errors.Is(err, errNoFreeBlock) {
			return 0, fmt.Errorf("%w: %d bytes requested", ErrOutOfMemory, size)
		}
		return 0, err
	}
}

// pressure tracks which one-shot recovery rungs of the allocation pressure
// ladder have fired. One instance spans all retries of one logical
// operation (alloc, magazine refill, or a combined group's solo fallback).
type pressure struct {
	defraggedList, defraggedProbe, extended, drainedRing bool
}

// relievePressure runs the allocation pressure ladder rung matching err:
// hash-table pressure defragments the probe window then extends the table
// (§5.2); space pressure drains the remote-free ring (the cheapest memory
// to reclaim) then merges free lists upward (§5.4). It returns retry=true
// when a rung made progress and the caller should re-attempt. With the
// ladder exhausted, space pressure returns errNoFreeBlock unwrapped so each
// caller can word its own out-of-memory error; everything else returns
// ready to surface. Caller holds mu with metadata rights on a ready
// sub-heap and must have aborted any half-staged batch.
func (s *subheap) relievePressure(p *pressure, class int, err error) (bool, error) {
	var ns *noSlotError
	switch {
	case errors.As(err, &ns):
		if !p.defraggedProbe {
			p.defraggedProbe = true
			if _, derr := s.defragProbeWindow(ns.key); derr != nil {
				return false, derr
			}
			return true, nil
		}
		if !p.extended {
			p.extended = true
			if eerr := s.extendLevel(); eerr != nil {
				if errors.Is(eerr, memblock.ErrTableFull) {
					return false, fmt.Errorf("%w: metadata table full", ErrOutOfMemory)
				}
				return false, eerr
			}
			return true, nil
		}
		return false, fmt.Errorf("%w: metadata table full", ErrOutOfMemory)
	case errors.Is(err, errNoFreeBlock):
		if !p.drainedRing {
			p.drainedRing = true
			n, derr := s.drainRingLocked(0)
			if derr != nil {
				return false, derr
			}
			if n > 0 {
				return true, nil
			}
		}
		if !p.defraggedList {
			p.defraggedList = true
			progress, derr := s.defragFreeLists(class)
			if derr != nil {
				return false, derr
			}
			if progress {
				return true, nil
			}
		}
		return false, errNoFreeBlock
	default:
		return false, err
	}
}

// carveOne stages the carve of one block of class `class` into b:
// find the smallest non-empty class ≥ class via the free mask, unlink its
// head, split halves down to the requested class (each upper half becomes
// a new free buddy, §5.2) and mark the block allocated. Returns the
// block's device offset and the class it was carved from (for gauge
// accounting). Nothing is committed; on error the caller must abort the
// batch. The find phase stages no writes, so errNoFreeBlock leaves the
// batch exactly as it was — refill relies on that to commit a partial
// batch. b is s.batch on the legacy paths and a chained per-op batch in a
// combined group (reads then see earlier group ops' staged state).
func (s *subheap) carveOne(b *txn.Batch, class int) (blockOff uint64, found int, err error) {
	g := s.mgr.Geometry()
	// One TrailingZeros64 over the DRAM nonempty bitmap replaces the
	// per-class device head reads. A set bit is verified against the real
	// head (through the batch, so staged pushes and removals in a multi-
	// carve refill are visible) and lazily cleared when the list proves
	// empty.
	var c int
	var slot uint64
	for {
		m := s.freeMask &^ (uint64(1)<<uint(class) - 1)
		if m == 0 {
			return 0, 0, errNoFreeBlock
		}
		c = bits.TrailingZeros64(m)
		head, herr := s.mgr.FreeHead(b, c)
		if herr != nil {
			return 0, 0, herr
		}
		if head != 0 {
			slot = head
			break
		}
		s.freeMask &^= 1 << uint(c)
	}
	found = c
	rec, err := s.mgr.ReadRecord(b, slot)
	if err != nil {
		return 0, 0, err
	}
	if err := s.mgr.RemoveFree(b, c, slot); err != nil {
		return 0, 0, err
	}
	blockOff = rec.BlockOff

	for c > class {
		c--
		half := g.ClassSize(c)
		buddyOff := blockOff + half
		bslot, ierr := s.mgr.Insert(b, buddyOff, half, memblock.StatusFree)
		if errors.Is(ierr, memblock.ErrNoSlot) {
			return 0, 0, &noSlotError{key: buddyOff}
		}
		if ierr != nil {
			return 0, 0, ierr
		}
		if err := s.mgr.PushFreeTail(b, c, bslot); err != nil {
			return 0, 0, err
		}
		s.freeMask |= 1 << uint(c)
	}
	if err := s.mgr.SetSize(b, slot, g.ClassSize(class)); err != nil {
		return 0, 0, err
	}
	if err := s.mgr.SetStatus(b, slot, memblock.StatusAllocated); err != nil {
		return 0, 0, err
	}
	return blockOff, found, nil
}

// tryAlloc is one allocation attempt inside a single failure-atomic batch.
func (s *subheap) tryAlloc(class int, lane *plog.MicroLog) (blockOff uint64, err error) {
	g := s.mgr.Geometry()
	b := s.batch
	committed := false
	defer func() {
		if !committed {
			b.Abort()
		}
	}()

	blockOff, found, err := s.carveOne(b, class)
	if err != nil {
		return 0, err
	}

	var hook func() error
	if lane != nil {
		loc := uint64(s.id)<<subheapShift | (blockOff - g.UserBase)
		entry := plog.MicroEntry{Offset: loc, Size: g.ClassSize(class)}
		hook = func() error { return lane.Append(entry) }
	}
	if cerr := b.CommitWith(hook); cerr != nil {
		// The commit may have sealed (or even applied) the batch; replay
		// the undo log to roll the metadata back before surfacing the
		// error.
		b.Abort()
		if rerr := s.undo.Replay(); rerr != nil {
			return 0, fmt.Errorf("poseidon: rollback after failed commit: %w", rerr)
		}
		_ = s.reseedFreeMask()
		if errors.Is(cerr, plog.ErrLogFull) {
			return 0, ErrTxTooLarge
		}
		return 0, cerr
	}
	committed = true
	s.noteMirrorMutation()
	if s.gauge != nil {
		s.gauge.allocBlocks.Add(1)
		s.gauge.allocBytes.Add(int64(g.ClassSize(class)))
		s.gauge.freeByClass[found].Add(-1)
		// Splitting left one free buddy at every class between the request
		// and the block we carved.
		for cc := class; cc < found; cc++ {
			s.gauge.freeByClass[cc].Add(1)
		}
	}
	return blockOff, nil
}

// free returns the block at device offset blockOff to its free list
// (paper §5.5). Invalid and double frees are detected via the hash table
// and rejected.
func (s *subheap) free(blockOff uint64) error {
	return s.freeAs(blockOff, nvm.ClassFree)
}

// freeAs is free with an explicit attribution class: recovery rollback of
// uncommitted transactional allocations charges ClassTxFree instead of
// ClassFree so the two show up separately in the amplification table.
func (s *subheap) freeAs(blockOff uint64, cls nvm.OpClass) (err error) {
	if s.isQuarantined() {
		return fmt.Errorf("%w: sub-heap %d (%s)", ErrSubheapQuarantined, s.id, s.quarantineReason())
	}
	// Only plain frees combine; recovery rollback (ClassTxFree) keeps the
	// legacy per-op path so its attribution and ordering stay untouched.
	if s.comb != nil && cls == nvm.ClassFree {
		return s.freeCombined(blockOff)
	}
	op := obs.OpFree
	if cls == nvm.ClassTxFree {
		op = obs.OpTxFree
	}
	s.lockOp(op)
	defer s.unlockOp()
	return s.freeBodyLocked(blockOff, cls)
}

// freeBodyLocked is the legacy per-op free body. Caller holds mu with
// metadata rights; both the plain path and the combined mode's uncontended
// fast path land here.
func (s *subheap) freeBodyLocked(blockOff uint64, cls nvm.OpClass) (err error) {
	if err := s.ensureReady(); err != nil {
		return err
	}
	s.setClass(cls)
	if tdone := s.traceBegin(obs.OpFree, 0); tdone != nil {
		defer func() { tdone(err) }()
	}
	// Local frees are a drain point too ("per N local ops").
	if err := s.maybeDrainLocked(); err != nil {
		return err
	}
	return s.freeLocked(blockOff)
}

// stageFree validates and stages the free of the block at blockOff into b,
// reading metadata through r — the raw window on the legacy path, the
// chained batch itself in a combined group (so the free sees earlier group
// ops' staged state). Validation rejects bump the counters and leave b
// untouched; a staging error requires the caller to abort b. The freeMask
// bit is set at stage time — an over-approximation until the commit lands,
// which is always safe (and the commit-failure paths reseed the mask).
func (s *subheap) stageFree(b *txn.Batch, r txn.Reader, blockOff uint64) (class int, size uint64, err error) {
	slot, err := s.mgr.Lookup(r, blockOff)
	if errors.Is(err, memblock.ErrNotFound) {
		s.stats.invalidFrees.Add(1)
		return 0, 0, ErrInvalidFree
	}
	if err != nil {
		return 0, 0, err
	}
	rec, err := s.mgr.ReadRecord(r, slot)
	if err != nil {
		return 0, 0, err
	}
	if rec.Status == memblock.StatusFree {
		s.stats.doubleFrees.Add(1)
		return 0, 0, ErrDoubleFree
	}
	g := s.mgr.Geometry()
	class, err = g.ClassOf(rec.Size)
	if err != nil {
		return 0, 0, fmt.Errorf("%w: record size %d", ErrCorruptHeap, rec.Size)
	}
	// Tail insertion delays reuse of the just-freed block (§5.5).
	if err := s.mgr.PushFreeTail(b, class, slot); err != nil {
		return 0, 0, err
	}
	s.freeMask |= 1 << uint(class)
	return class, rec.Size, nil
}

// freeLocked is the body of freeAs — and the exact per-entry logic the
// remote-free ring drain replays. Caller holds mu with metadata rights on
// a ready sub-heap.
func (s *subheap) freeLocked(blockOff uint64) error {
	b := s.batch
	class, size, err := s.stageFree(b, s.winReader, blockOff)
	if err != nil {
		b.Abort()
		return err
	}
	if err := b.Commit(); err != nil {
		b.Abort()
		if rerr := s.undo.Replay(); rerr != nil {
			return fmt.Errorf("poseidon: rollback after failed commit: %w", rerr)
		}
		_ = s.reseedFreeMask()
		return err
	}
	s.stats.frees.Add(1)
	s.noteMirrorMutation()
	if s.gauge != nil {
		s.gauge.allocBlocks.Add(-1)
		s.gauge.allocBytes.Add(-int64(size))
		s.gauge.freeByClass[class].Add(1)
	}
	return nil
}

// drainInterval paces the opportunistic drain: every drainInterval-th
// operation under mu drains the ring even when it is far from full, so a
// quiet ring still empties.
const drainInterval = 64

// remoteFree enqueues a cross-sub-heap free on this sub-heap's remote-free
// ring without taking its lock: CAS-reserve a ticket, persist the encoded
// entry with a single flush+fence through the CALLING thread's window, and
// publish. Reports handled=false when the ring is disarmed or full — the
// caller then falls back to the locked path, so Free never blocks.
func (s *subheap) remoteFree(t *Thread, blockOff uint64) (bool, error) {
	r := s.ring
	if !r.Armed() || s.isQuarantined() {
		return false, nil
	}
	ticket, ok := r.Reserve()
	if !ok {
		s.stats.ringFallbacks.Add(1)
		return false, nil
	}
	word := memblock.EncodeRingEntry(blockOff-s.h.lay.userBase(s.id), uint8(ticket))
	slotOff := r.SlotOff(ticket)
	// The ring lives in protected metadata, and the producer is an
	// application thread: grant it write rights for the one store, and
	// charge the traffic to the free class.
	if t.rec != nil {
		t.rec.SetClass(nvm.ClassFree)
		defer t.rec.SetClass(nvm.ClassUser)
	}
	t.h.grant(t.pkru)
	err := t.win.PersistU64(slotOff, word)
	if err != nil {
		// The entry may or may not have reached the slot; best-effort
		// zero it so the drain skips it. Publish regardless — an
		// unpublished ticket would wedge the ring head forever.
		_ = t.win.WriteU64(slotOff, 0)
	}
	t.h.revoke(t.pkru)
	r.Publish(ticket)
	if err != nil {
		return true, err
	}
	s.stats.remoteFrees.Add(1)
	return true, nil
}

// maybeDrainLocked is the opportunistic drain trigger on the alloc and
// free paths: a full drain when the ring is at least half full, and every
// drainInterval-th operation regardless. Caller holds mu with metadata
// rights on a ready sub-heap.
func (s *subheap) maybeDrainLocked() error {
	if !s.ring.Armed() {
		return nil
	}
	s.localOps++
	if s.ring.Pending() >= memblock.RingSlots/2 || s.localOps%drainInterval == 0 {
		_, err := s.drainRingLocked(0)
		return err
	}
	return nil
}

// drainRingLocked consumes published remote-free ring entries in batches:
// each entry is freed exactly as freeAs would (an entry whose record is
// already free or unknown is an idempotent no-op feeding the double/
// invalid-free counters), its slot is cleared, and the batch's cleared
// slots are made durable with a single trailing fence. Only then are the
// tickets released to producers: releasing before the clears are durable
// would let a crash replay an old entry against a block that was
// re-allocated in the meantime. A published entry that fails its checksum
// is media corruption (producers persist a slot fully or not at all) — the
// ring is disarmed and the sub-heap quarantined, degrade-don't-die.
// limit <= 0 drains everything pending. Caller holds mu with metadata
// rights on a ready sub-heap.
func (s *subheap) drainRingLocked(limit int) (int, error) {
	r := s.ring
	if !r.Armed() {
		return 0, nil
	}
	// Empty ring: nothing to do, and no OpDrain sample — the histogram
	// counts real batches, which is what amortization math divides by.
	if _, ok := r.PeekDrain(0); !ok {
		return 0, nil
	}
	done := s.timeDrain()
	defer done()
	g := s.mgr.Geometry()
	drained := 0
	var err error
	if tdone := s.traceBegin(obs.OpDrain, 0); tdone != nil {
		defer func() { tdone(err) }()
	}
	for limit <= 0 || drained < limit {
		ticket, ok := r.PeekDrain(drained)
		if !ok {
			break
		}
		slotOff := r.SlotOff(ticket)
		var word uint64
		if word, err = s.readRetry(slotOff); err != nil {
			break
		}
		if word != 0 { // zero: a producer's failed persist, skip the slot
			rel, _, okE := memblock.DecodeRingEntry(word)
			if !okE || rel >= g.UserSize {
				r.Disarm()
				s.quarantine(fmt.Sprintf(
					"remote-free ring slot %d holds corrupt entry %#x", ticket%memblock.RingSlots, word))
				err = fmt.Errorf("%w: remote-free ring entry %#x", ErrCorruptHeap, word)
				break
			}
			if ferr := s.freeLocked(g.UserBase + rel); ferr != nil &&
				!errors.Is(ferr, ErrInvalidFree) && !errors.Is(ferr, ErrDoubleFree) {
				err = ferr
				break
			}
		}
		if err = s.win.WriteU64(slotOff, 0); err != nil {
			break
		}
		if err = s.win.Flush(slotOff, 8); err != nil {
			break
		}
		drained++
	}
	if drained > 0 {
		s.win.Fence()
		r.Release(drained)
		s.stats.remoteDrains.Add(uint64(drained))
	}
	return drained, err
}

// drainRemote is the standalone full drain (Heap.DrainRemoteFrees): one
// lock acquisition, ring to empty.
func (s *subheap) drainRemote() error {
	if !s.ring.Armed() || s.isQuarantined() {
		return nil
	}
	s.lockOp(obs.OpDrain)
	defer s.unlockOp()
	if err := s.ensureReady(); err != nil {
		return err
	}
	_, err := s.drainRingLocked(0)
	return err
}

// replayRingLocked replays un-drained remote-free ring entries after a
// restart — the producer persisted its entry, but the owner never drained
// it. Valid entries are freed idempotently (a record already free or
// unknown feeds the counters as a no-op: the crash fell between the
// drain's free commit and its slot clear) and their slots cleared. Corrupt
// entries are LEFT IN PLACE for the audit to report, and the ring stays
// disarmed so producers cannot overwrite the evidence — the sub-heap then
// serves through the locked free path only. Caller holds mu with metadata
// rights on a ready sub-heap.
func (s *subheap) replayRingLocked() error {
	g := s.mgr.Geometry()
	base := s.ring.Base()
	corrupt, cleared := 0, 0
	for i := uint64(0); i < memblock.RingSlots; i++ {
		off := base + i*memblock.RingSlotBytes
		word, err := s.readRetry(off)
		if err != nil {
			return err
		}
		if word == 0 {
			continue
		}
		rel, _, ok := memblock.DecodeRingEntry(word)
		if !ok || rel >= g.UserSize {
			corrupt++
			continue
		}
		switch ferr := s.freeLocked(g.UserBase + rel); {
		case ferr == nil:
			s.stats.remoteDrains.Add(1)
		case errors.Is(ferr, ErrInvalidFree) || errors.Is(ferr, ErrDoubleFree):
			s.stats.recoveredNoops.Add(1)
		default:
			return ferr
		}
		if err := s.win.WriteU64(off, 0); err != nil {
			return err
		}
		if err := s.win.Flush(off, 8); err != nil {
			return err
		}
		cleared++
	}
	if cleared > 0 {
		s.win.Fence()
	}
	s.ring.Reset()
	if corrupt == 0 && s.h.opts.RemoteFreeRings {
		s.ring.Arm()
	}
	return nil
}

// timeDrain retags device traffic as ClassFree (a drain is the deferred
// half of frees) and returns a closure that restores the previous class
// and records the batch in the drain latency histogram. A no-op (returning
// a no-op) without telemetry.
func (s *subheap) timeDrain() func() {
	if s.h.tel == nil {
		return func() {}
	}
	start := time.Now()
	prev := s.rec.Class()
	s.rec.SetClass(nvm.ClassFree)
	return func() {
		s.rec.SetClass(prev)
		s.h.tel.RecordOn(s.id, obs.OpDrain, time.Since(start))
	}
}

// refillMagazine carves up to want blocks of class `class` for a thread
// magazine: one lock acquisition, one undo transaction for the whole
// batch, and — inside the commit hook, after the undo snapshot is sealed
// but before it truncates — one persistent manifest entry per block with
// a single flush+fence for all of them. That ordering is the crash-leak
// argument: by the time the undo log lets go of the carve, every carved
// block is durably named in the manifest, so recovery either rolls the
// carve back (crash before commit) or finds the entries and returns the
// blocks to their free lists (crash after).
//
// Entries land at manifest words man.WordOff(slot0)…; the caller owns
// that window exclusively. Under space pressure a partial batch (fewer
// than want, at least one) commits; with nothing carvable the underlying
// errNoFreeBlock surfaces so the caller can fall back to the full
// pressure loop of alloc. An undo log too small for the batch halves
// want and retries.
func (s *subheap) refillMagazine(class, want int, man plog.Manifest, slot0 uint64) (_ []uint64, err error) {
	if s.isQuarantined() {
		return nil, fmt.Errorf("%w: sub-heap %d (%s)", ErrSubheapQuarantined, s.id, s.quarantineReason())
	}
	s.lockOp(obs.OpRefill)
	defer s.unlockOp()
	if err := s.ensureReady(); err != nil {
		return nil, err
	}
	s.setClass(nvm.ClassAlloc)
	if err := s.maybeDrainLocked(); err != nil {
		return nil, err
	}
	done := s.timeRefill()
	defer done()
	g := s.mgr.Geometry()
	if tdone := s.traceBegin(obs.OpRefill, uint64(want)*g.ClassSize(class)); tdone != nil {
		defer func() { tdone(err) }()
	}
	// Same pressure-recovery ladder as the alloc slow path (shared via
	// relievePressure): hash-table pressure defragments the probe window
	// then extends the table; space pressure drains the remote ring then
	// merges free lists. stageCarves aborts its batch before surfacing
	// either, so the recovery ops run on a clean slate.
	var p pressure
	for {
		blocks, founds, err := s.stageCarves(class, want)
		if err != nil {
			retry, err := s.relievePressure(&p, class, err)
			if retry {
				continue
			}
			if errors.Is(err, errNoFreeBlock) {
				return nil, fmt.Errorf("%w: magazine refill of class %d", ErrOutOfMemory, class)
			}
			return nil, err
		}
		hook := func() error {
			for i, off := range blocks {
				word := plog.EncodeCacheEntry(off-g.UserBase, uint16(s.id))
				if werr := s.win.WriteU64(man.WordOff(slot0+uint64(i)), word); werr != nil {
					return werr
				}
			}
			if ferr := s.win.Flush(man.WordOff(slot0), uint64(len(blocks))*8); ferr != nil {
				return ferr
			}
			s.win.Fence()
			return nil
		}
		if cerr := s.batch.CommitWith(hook); cerr != nil {
			s.batch.Abort()
			if rerr := s.undo.Replay(); rerr != nil {
				return nil, fmt.Errorf("poseidon: rollback after failed refill: %w", rerr)
			}
			_ = s.reseedFreeMask()
			if errors.Is(cerr, plog.ErrLogFull) && want > 1 {
				want /= 2
				continue
			}
			return nil, cerr
		}
		s.stats.magazineRefills.Add(1)
		s.noteMirrorMutation()
		if s.gauge != nil {
			size := int64(g.ClassSize(class))
			for i := range blocks {
				s.gauge.allocBlocks.Add(1)
				s.gauge.allocBytes.Add(size)
				s.gauge.freeByClass[founds[i]].Add(-1)
				for cc := class; cc < founds[i]; cc++ {
					s.gauge.freeByClass[cc].Add(1)
				}
			}
		}
		return blocks, nil
	}
}

// stageCarves stages up to want carves of class `class` into s.batch.
// Space pressure after at least one successful carve truncates the batch
// there (the find phase stages nothing, so the batch is commit-clean);
// any other error — including hash-table pressure mid-split, which leaves
// a half-staged carve — aborts the whole batch and surfaces.
func (s *subheap) stageCarves(class, want int) (blocks []uint64, founds []int, err error) {
	for i := 0; i < want; i++ {
		off, found, cerr := s.carveOne(s.batch, class)
		if cerr != nil {
			if errors.Is(cerr, errNoFreeBlock) && len(blocks) > 0 {
				break
			}
			s.batch.Abort()
			return nil, nil, cerr
		}
		blocks = append(blocks, off)
		founds = append(founds, found)
	}
	return blocks, founds, nil
}

// flushCached returns magazine-cached blocks to their free lists: one
// lock acquisition, one undo transaction for the whole batch (overflow,
// thread close, lane-manifest adoption). Entries whose block is unknown
// or already free are skipped as idempotent no-ops feeding the counters —
// exactly the states a crashed predecessor can leave behind.
//
// The given manifest words are cleared (and the clears flushed + fenced)
// after the commit, while the sub-heap lock is still held. The ordering
// is load-bearing twice over. Clears must come after the undo log
// truncates: a crash mid-commit replays the undo log and un-frees the
// blocks, so their entries must still exist or the blocks would leak. And
// they must complete before the lock is released: the commit puts the
// blocks back on free lists, so a clear after unlock would race a
// re-allocation — a crash in that window would make recovery's manifest
// replay free a block some other thread just carved. A crash between
// commit and clears leaves stale entries whose replay is an idempotent
// no-op (the blocks are durably free). Returns how many blocks were
// freed.
func (s *subheap) flushCached(devOffs []uint64, man plog.Manifest, words []uint64) (int, error) {
	if s.isQuarantined() {
		return 0, fmt.Errorf("%w: sub-heap %d (%s)", ErrSubheapQuarantined, s.id, s.quarantineReason())
	}
	s.lockOp(obs.OpFree)
	defer s.unlockOp()
	if err := s.ensureReady(); err != nil {
		return 0, err
	}
	s.setClass(nvm.ClassFree)
	g := s.mgr.Geometry()
	b := s.batch
	type freedBlock struct {
		class int
		size  uint64
	}
	var freed []freedBlock
	for _, dev := range devOffs {
		slot, err := s.mgr.Lookup(s.win, dev)
		if errors.Is(err, memblock.ErrNotFound) {
			s.stats.invalidFrees.Add(1)
			continue
		}
		if err != nil {
			b.Abort()
			return 0, err
		}
		rec, err := s.mgr.ReadRecord(s.win, slot)
		if err != nil {
			b.Abort()
			return 0, err
		}
		if rec.Status == memblock.StatusFree {
			s.stats.doubleFrees.Add(1)
			continue
		}
		class, err := g.ClassOf(rec.Size)
		if err != nil {
			b.Abort()
			return 0, fmt.Errorf("%w: record size %d", ErrCorruptHeap, rec.Size)
		}
		if err := s.mgr.PushFreeTail(b, class, slot); err != nil {
			b.Abort()
			return 0, err
		}
		s.freeMask |= 1 << uint(class)
		freed = append(freed, freedBlock{class: class, size: rec.Size})
	}
	if len(freed) > 0 {
		if err := b.Commit(); err != nil {
			b.Abort()
			if rerr := s.undo.Replay(); rerr != nil {
				return 0, fmt.Errorf("poseidon: rollback after failed flush-back: %w", rerr)
			}
			_ = s.reseedFreeMask()
			return 0, err
		}
		s.stats.magazineFlushes.Add(1)
		s.noteMirrorMutation()
		if s.gauge != nil {
			for _, f := range freed {
				s.gauge.allocBlocks.Add(-1)
				s.gauge.allocBytes.Add(-int64(f.size))
				s.gauge.freeByClass[f.class].Add(1)
			}
		}
	} else {
		b.Abort()
	}
	if len(words) > 0 {
		lo, hi := words[0], words[0]
		for _, w := range words {
			if err := s.win.WriteU64(man.WordOff(w), 0); err != nil {
				return len(freed), err
			}
			if w < lo {
				lo = w
			}
			if w > hi {
				hi = w
			}
		}
		// One flush over the covering range: persisting unrelated words in
		// between is harmless (their content is either already durable or
		// pending under the relaxed contract, where early durability is
		// always safe).
		if err := s.win.Flush(man.WordOff(lo), (hi-lo+1)*8); err != nil {
			return len(freed), err
		}
		s.win.Fence()
	}
	return len(freed), nil
}

// timeRefill retags device traffic as ClassAlloc (a refill is the
// deferred half of magazine allocs) and returns a closure that restores
// the previous class and records the batch in the refill latency
// histogram. A no-op (returning a no-op) without telemetry.
func (s *subheap) timeRefill() func() {
	if s.h.tel == nil {
		return func() {}
	}
	start := time.Now()
	prev := s.rec.Class()
	s.rec.SetClass(nvm.ClassAlloc)
	return func() {
		s.rec.SetClass(prev)
		s.h.tel.RecordOn(s.id, obs.OpRefill, time.Since(start))
	}
}

// mergeBuddy coalesces the free block recorded at slot with its buddy if
// the buddy is also free and the same size. One merge is one failure-atomic
// batch. Returns whether a merge happened.
func (s *subheap) mergeBuddy(slot uint64) (bool, error) {
	g := s.mgr.Geometry()
	rec, err := s.mgr.ReadRecord(s.win, slot)
	if err != nil {
		return false, err
	}
	// The slot may have been emptied or repurposed by an earlier merge in
	// the same defrag pass.
	if rec.BlockOff == 0 || rec.BlockOff == ^uint64(0) || rec.Status != memblock.StatusFree {
		return false, nil
	}
	if rec.Size >= g.UserSize {
		return false, nil // already the maximum class
	}
	rel := rec.BlockOff - g.UserBase
	buddyOff := g.UserBase + (rel ^ rec.Size)
	bslot, err := s.mgr.Lookup(s.win, buddyOff)
	if errors.Is(err, memblock.ErrNotFound) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	brec, err := s.mgr.ReadRecord(s.win, bslot)
	if err != nil {
		return false, err
	}
	if brec.Status != memblock.StatusFree || brec.Size != rec.Size {
		return false, nil
	}
	class, err := g.ClassOf(rec.Size)
	if err != nil {
		return false, err
	}
	lower, higher := rec, brec
	if brec.BlockOff < rec.BlockOff {
		lower, higher = brec, rec
	}
	b := s.batch
	merge := func() error {
		if err := s.mgr.RemoveFree(b, class, rec.Slot); err != nil {
			return err
		}
		if err := s.mgr.RemoveFree(b, class, brec.Slot); err != nil {
			return err
		}
		if err := s.mgr.Delete(b, higher.Slot); err != nil {
			return err
		}
		if err := s.mgr.SetSize(b, lower.Slot, rec.Size*2); err != nil {
			return err
		}
		return s.mgr.PushFreeTail(b, class+1, lower.Slot)
	}
	if err := merge(); err != nil {
		b.Abort()
		return false, err
	}
	if err := b.Commit(); err != nil {
		b.Abort()
		if rerr := s.undo.Replay(); rerr != nil {
			return false, fmt.Errorf("poseidon: rollback after failed merge: %w", rerr)
		}
		_ = s.reseedFreeMask()
		return false, err
	}
	s.freeMask |= 1 << uint(class+1)
	s.stats.defragMerges.Add(1)
	s.noteMirrorMutation()
	if s.gauge != nil {
		s.gauge.freeByClass[class].Add(-2)
		s.gauge.freeByClass[class+1].Add(1)
	}
	return true, nil
}

// defragFreeLists merges smaller free blocks upward until a block of at
// least class target exists or no merge makes progress (§5.4 case 1).
func (s *subheap) defragFreeLists(target int) (bool, error) {
	defer s.timeDefrag()()
	g := s.mgr.Geometry()
	satisfied := func() (bool, error) {
		for c := target; c < g.NumClasses; c++ {
			head, err := s.mgr.FreeHead(s.win, c)
			if err != nil {
				return false, err
			}
			if head != 0 {
				return true, nil
			}
		}
		return false, nil
	}
	anyMerge := false
	for c := 0; c < target; c++ {
		slots, err := s.freeListSlots(c)
		if err != nil {
			return false, err
		}
		for _, slot := range slots {
			merged, err := s.mergeBuddy(slot)
			if err != nil {
				return false, err
			}
			if merged {
				anyMerge = true
				if ok, err := satisfied(); err != nil || ok {
					return ok, err
				}
			}
		}
	}
	ok, err := satisfied()
	if err != nil {
		return false, err
	}
	return ok && anyMerge || ok, nil
}

// timeDefrag retags device traffic as ClassDefrag and returns a closure
// that restores the previous class and records the pass in the defrag
// latency histogram. A no-op (returning a no-op) without telemetry.
func (s *subheap) timeDefrag() func() {
	if s.h.tel == nil {
		return func() {}
	}
	start := time.Now()
	prev := s.rec.Class()
	s.rec.SetClass(nvm.ClassDefrag)
	return func() {
		s.rec.SetClass(prev)
		s.h.tel.RecordOn(s.id, obs.OpDefrag, time.Since(start))
	}
}

// defragProbeWindow merges free blocks recorded in the probe window of key
// to open a hash slot there (§5.4 case 2).
func (s *subheap) defragProbeWindow(key uint64) (bool, error) {
	defer s.timeDefrag()()
	slots, err := s.mgr.ProbeWindowSlots(s.win, key)
	if err != nil {
		return false, err
	}
	any := false
	for _, slot := range slots {
		merged, err := s.mergeBuddy(slot)
		if err != nil {
			return false, err
		}
		any = any || merged
	}
	return any, nil
}

// freeListSlots snapshots the slots on class c's free list.
func (s *subheap) freeListSlots(c int) ([]uint64, error) {
	var out []uint64
	head, err := s.mgr.FreeHead(s.win, c)
	if err != nil {
		return nil, err
	}
	for slot := head; slot != 0; {
		out = append(out, slot)
		rec, err := s.mgr.ReadRecord(s.win, slot)
		if err != nil {
			return nil, err
		}
		slot = rec.NextFree
		if uint64(len(out)) > s.mgr.Geometry().TotalSlots() {
			return nil, fmt.Errorf("%w: cyclic free list (class %d)", ErrCorruptHeap, c)
		}
	}
	return out, nil
}

// extendLevel activates the next hash-table level in its own batch. The
// level count is mirrored critical metadata, so the mirror is refreshed
// eagerly — a level activation is rare and must not wait out the
// mutation-paced refresh.
func (s *subheap) extendLevel() error {
	if err := s.mgr.ExtendLevel(s.batch); err != nil {
		s.batch.Abort()
		return err
	}
	if err := s.batch.Commit(); err != nil {
		s.batch.Abort()
		if rerr := s.undo.Replay(); rerr != nil {
			return fmt.Errorf("poseidon: rollback after failed extend: %w", rerr)
		}
		_ = s.reseedFreeMask()
		return err
	}
	_ = s.updateMirrorLocked()
	return nil
}

// blockSize returns the size of the allocated block starting at device
// offset blockOff (used by the facade for bounds-checked access).
func (s *subheap) blockSize(blockOff uint64) (uint64, error) {
	if s.isQuarantined() {
		return 0, fmt.Errorf("%w: sub-heap %d (%s)", ErrSubheapQuarantined, s.id, s.quarantineReason())
	}
	s.mu.Lock()
	s.h.grant(s.thread)
	defer func() {
		s.h.revoke(s.thread)
		s.mu.Unlock()
	}()
	if err := s.ensureReady(); err != nil {
		return 0, err
	}
	slot, err := s.mgr.Lookup(s.win, blockOff)
	if errors.Is(err, memblock.ErrNotFound) {
		return 0, ErrBadPointer
	}
	if err != nil {
		return 0, err
	}
	rec, err := s.mgr.ReadRecord(s.win, slot)
	if err != nil {
		return 0, err
	}
	if rec.Status != memblock.StatusAllocated {
		return 0, ErrBadPointer
	}
	return rec.Size, nil
}
