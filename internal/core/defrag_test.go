package core

import (
	"errors"
	"testing"

	"poseidon/internal/memblock"
)

// TestProbeWindowDefrag exercises §5.4 case 2 directly: when the hash
// table has no slot in a key's probe window, merging free blocks recorded
// in that window releases slots locally.
func TestProbeWindowDefrag(t *testing.T) {
	h := newTestHeap(t)
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()

	// Two adjacent 64 B buddies (offsets 0 and 64 of the region, since the
	// first splits carve the region front-to-back).
	a, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if b.Offset() != a.Offset()+64 || a.Offset()%128 != 0 {
		t.Fatalf("blocks not a buddy pair: %#x, %#x", a.Offset(), b.Offset())
	}
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(b); err != nil {
		t.Fatal(err)
	}

	s := h.subheaps[0]
	s.mu.Lock()
	h.grant(s.thread)
	aDev, err := h.lay.locToDevice(0, a.Offset())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := s.defragProbeWindow(aDev)
	if err != nil {
		t.Fatal(err)
	}
	if !merged {
		t.Fatal("probe-window defrag merged nothing")
	}
	// The pair is now one 128 B free block; b's record is gone.
	slot, err := s.mgr.Lookup(s.win, aDev)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := s.mgr.ReadRecord(s.win, slot)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Size < 128 || rec.Status != memblock.StatusFree {
		t.Fatalf("merged record = %+v", rec)
	}
	bDev := aDev + 64
	if _, err := s.mgr.Lookup(s.win, bDev); !errors.Is(err, memblock.ErrNotFound) {
		t.Fatalf("absorbed buddy still indexed: %v", err)
	}
	h.revoke(s.thread)
	s.mu.Unlock()
	auditHeap(t, h)
}

// TestMergeBuddySkipsNonCandidates pins the guards of mergeBuddy: stale
// slots, allocated blocks, mismatched sizes and max-class blocks never
// merge.
func TestMergeBuddySkipsNonCandidates(t *testing.T) {
	h := newTestHeap(t)
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	a, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// a allocated; its buddy (split remainder) is free — merge must refuse
	// from either side because a is allocated.
	s := h.subheaps[0]
	s.mu.Lock()
	h.grant(s.thread)
	defer func() {
		h.revoke(s.thread)
		s.mu.Unlock()
	}()
	aDev, err := h.lay.locToDevice(0, a.Offset())
	if err != nil {
		t.Fatal(err)
	}
	slotA, err := s.mgr.Lookup(s.win, aDev)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := s.mergeBuddy(slotA)
	if err != nil {
		t.Fatal(err)
	}
	if merged {
		t.Fatal("merged an allocated block")
	}
	// The free buddy of the allocated block also refuses.
	slotB, err := s.mgr.Lookup(s.win, aDev+64)
	if err != nil {
		t.Fatal(err)
	}
	merged, err = s.mergeBuddy(slotB)
	if err != nil {
		t.Fatal(err)
	}
	if merged {
		t.Fatal("merged into an allocated buddy")
	}
}

// TestMprotectModeCountsSwitches verifies the ablation plumbing: the
// mprotect-style protection performs the same grant/revoke pairs, only
// priced differently.
func TestMprotectModeCountsSwitches(t *testing.T) {
	opts := testOptions()
	opts.Protection = ProtectMprotect
	opts.MprotectCost = 10 // keep the test fast
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().PermissionSwitches; got == 0 {
		t.Fatal("mprotect mode recorded no switches")
	}
}
