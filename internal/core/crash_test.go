package core

import (
	"errors"
	"math/rand"
	"testing"

	"poseidon/internal/nvm"
)

// TestCrashInjection is the adversarial crash-consistency property test:
// run a random allocation/free/transaction trace, kill the device after a
// random number of stores (hitting every interior persist point of an
// operation), crash with random cacheline eviction, recover, and audit.
//
// The contract after recovery:
//   - heap invariants hold (no overlap, exact tiling, consistent lists);
//   - every operation that returned success before the failure is durable
//     (allocated blocks free exactly once; freed blocks double-free);
//   - the operation in flight at the failure may have gone either way, but
//     never partially;
//   - allocations of the uncommitted transaction are rolled back.
func TestCrashInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("crash injection is slow")
	}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			runCrashTrace(t, seed)
		})
	}
}

func runCrashTrace(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	opts := Options{
		Subheaps:        2,
		SubheapUserSize: 256 << 10,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      4,
		HeapID:          uint64(seed) + 1,
		CrashTracking:   true,
	}
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}

	// Confirmed state (ops that returned before the device died).
	allocated := map[NVMPtr]bool{}
	var txOpen []NVMPtr // uncommitted transactional allocations
	unknown := map[NVMPtr]bool{}

	// Arm the failpoint after a random prefix of stores.
	h.Device().FailAfter(int64(rng.Intn(3000) + 10))

	var ptrs []NVMPtr
	dead := false
	for step := 0; step < 400 && !dead; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // alloc
			size := uint64(rng.Intn(2000) + 1)
			p, err := th.Alloc(size)
			switch {
			case err == nil:
				allocated[p] = true
				ptrs = append(ptrs, p)
			case errors.Is(err, nvm.ErrDeviceFailed):
				dead = true
			case errors.Is(err, ErrOutOfMemory):
			default:
				t.Fatalf("seed %d step %d: alloc: %v", seed, step, err)
			}
		case op < 8: // free
			if len(ptrs) == 0 {
				continue
			}
			k := rng.Intn(len(ptrs))
			p := ptrs[k]
			if !allocated[p] {
				continue
			}
			err := th.Free(p)
			switch {
			case err == nil:
				delete(allocated, p)
				ptrs[k] = ptrs[len(ptrs)-1]
				ptrs = ptrs[:len(ptrs)-1]
			case errors.Is(err, nvm.ErrDeviceFailed):
				// Outcome unknown: may or may not have freed.
				unknown[p] = true
				delete(allocated, p)
				dead = true
			default:
				t.Fatalf("seed %d step %d: free: %v", seed, step, err)
			}
		default: // transactional allocation burst
			n := rng.Intn(3) + 1
			commit := rng.Intn(2) == 0
			for i := 0; i < n && !dead; i++ {
				isEnd := commit && i == n-1
				p, err := th.TxAlloc(uint64(rng.Intn(500)+1), isEnd)
				switch {
				case err == nil:
					if isEnd {
						// Commit makes the whole burst durable.
						for _, q := range txOpen {
							allocated[q] = true
							ptrs = append(ptrs, q)
						}
						txOpen = txOpen[:0]
						allocated[p] = true
						ptrs = append(ptrs, p)
					} else {
						txOpen = append(txOpen, p)
					}
				case errors.Is(err, nvm.ErrDeviceFailed):
					for _, q := range txOpen {
						unknown[q] = true
					}
					txOpen = txOpen[:0]
					dead = true
				case errors.Is(err, ErrOutOfMemory) || errors.Is(err, ErrTxTooLarge):
				default:
					t.Fatalf("seed %d step %d: txalloc: %v", seed, step, err)
				}
			}
			if !commit {
				// Abandoned (uncommitted) transaction: stays open until the
				// crash; recovery must roll it back. Mark as rollback
				// candidates, not as allocated.
				for _, q := range txOpen {
					unknown[q] = true // rolled back at recovery; free may race
				}
				txOpen = txOpen[:0]
			}
		}
	}

	// Power failure with adversarial eviction, then restart.
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: seed * 977}); err != nil {
		t.Fatal(err)
	}
	h.Device().DisarmFailpoint()
	_ = h.Close()
	h2, err := Load(h.Device(), opts)
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}
	auditHeap(t, h2)

	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	// Confirmed-allocated blocks must free exactly once.
	for p := range allocated {
		if unknown[p] {
			continue
		}
		if err := th2.Free(p); err != nil {
			t.Fatalf("seed %d: confirmed block %v lost after crash: %v", seed, p, err)
		}
	}
	auditHeap(t, h2)

	// A second crash+recovery must be a no-op on consistency.
	if _, err := h2.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h2.Close()
	h3, err := Load(h2.Device(), opts)
	if err != nil {
		t.Fatalf("seed %d: second recovery failed: %v", seed, err)
	}
	auditHeap(t, h3)
}
