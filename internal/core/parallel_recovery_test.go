package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
)

// parallelRecoveryOptions is an 8-sub-heap heap with every recovery surface
// armed: micro-log lanes, remote-free rings, magazines and the load audit.
func parallelRecoveryOptions(par int) Options {
	return Options{
		Subheaps:            8,
		SubheapUserSize:     1 << 20,
		SubheapMetaSize:     256 << 10,
		UndoLogSize:         64 << 10,
		MaxThreads:          16,
		HeapID:              0xFA40,
		CrashTracking:       true,
		ScrubOnLoad:         true,
		RemoteFreeRings:     true,
		Magazines:           MagazineOptions{Capacity: 16, Classes: 4},
		RecoveryParallelism: par,
	}
}

// messyCrashedImage builds a heap with recovery work pending on every
// surface — open transactions in several lanes, populated magazines,
// undrained remote frees — crashes it, and saves the image to a temp file
// so multiple Loads can recover identical copies.
func messyCrashedImage(t *testing.T) string {
	t.Helper()
	opts := parallelRecoveryOptions(1)
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var threads []*Thread
	for w := 0; w < h.Subheaps(); w++ {
		th, err := h.ThreadOn(w)
		if err != nil {
			t.Fatal(err)
		}
		threads = append(threads, th)
		var blocks []NVMPtr
		for i := 0; i < 24; i++ {
			p, err := th.Alloc(uint64(64 << (i % 3)))
			if err != nil {
				t.Fatal(err)
			}
			blocks = append(blocks, p)
		}
		// Remote frees: push some blocks into ANOTHER sub-heap's ring.
		if w > 0 {
			for i := 0; i < 4; i++ {
				if err := threads[0].Free(blocks[i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Leave a transaction open: its lane entries must roll back.
		if _, err := th.TxAlloc(128, false); err != nil {
			t.Fatal(err)
		}
		if _, err := th.TxAlloc(256, false); err != nil {
			t.Fatal(err)
		}
	}
	// Threads stay open (magazines populated, lanes uncommitted): the crash
	// below is the adversarial power cut mid-flight.
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "messy.img")
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadImage recovers the saved image with the given parallelism.
func loadImage(t *testing.T, path string, par int) *Heap {
	t.Helper()
	dev, err := nvm.LoadFile(path, nvm.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	opts := parallelRecoveryOptions(par)
	h, err := Load(dev, opts)
	if err != nil {
		t.Fatalf("Load (parallelism %d): %v", par, err)
	}
	return h
}

// recoveryStats is the parallelism-independent subset of HeapStats two
// recoveries of the same image must agree on. PermissionSwitches is
// excluded by construction: worker threads issue their own grant/revoke
// pairs, which changes the switch count but nothing persistent.
func recoveryStats(st HeapStats) map[string]uint64 {
	return map[string]uint64{
		"recoveredBlocks":     st.RecoveredBlocks,
		"recoveredNoops":      st.RecoveredNoops,
		"recoveredCached":     st.RecoveredCached,
		"invalidFrees":        st.InvalidFrees,
		"doubleFrees":         st.DoubleFrees,
		"quarantinedSubheaps": st.QuarantinedSubheaps,
		"quarantinedBytes":    st.QuarantinedBytes,
		"remoteDrains":        st.RemoteDrains,
	}
}

// saveBytes snapshots the persistent image.
func saveBytes(t *testing.T, h *Heap) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.img")
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelRecoveryMatchesSerialImage is the core-level byte-identity
// check: recovering the same crashed image serially and with an 8-way
// fan-out must produce identical persistent images, audits and recovery
// counters. (The randomized, schedule-driven version lives in
// internal/alloctest; this one pins the invariant close to the machinery.)
func TestParallelRecoveryMatchesSerialImage(t *testing.T) {
	path := messyCrashedImage(t)

	hSerial := loadImage(t, path, 1)
	defer hSerial.Close()
	hPar := loadImage(t, path, 8)
	defer hPar.Close()

	repS, err := hSerial.Check()
	if err != nil {
		t.Fatal(err)
	}
	repP, err := hPar.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !repS.OK() {
		t.Fatalf("serial recovery audit: %v", repS.Problems)
	}
	if !repP.OK() {
		t.Fatalf("parallel recovery audit: %v", repP.Problems)
	}
	if repS.AllocatedBlocks != repP.AllocatedBlocks || repS.FreeBlocks != repP.FreeBlocks {
		t.Fatalf("census diverges: serial %d/%d, parallel %d/%d allocated/free",
			repS.AllocatedBlocks, repS.FreeBlocks, repP.AllocatedBlocks, repP.FreeBlocks)
	}
	if repS.PendingTx != 0 || repP.PendingTx != 0 {
		t.Fatalf("pending tx after recovery: serial %d, parallel %d", repS.PendingTx, repP.PendingTx)
	}
	sS, sP := recoveryStats(hSerial.Stats()), recoveryStats(hPar.Stats())
	for k, v := range sS {
		if sP[k] != v {
			t.Errorf("stat %s diverges: serial %d, parallel %d", k, v, sP[k])
		}
	}
	if hSerial.Stats().RecoveredBlocks == 0 {
		t.Fatal("scenario recovered no tx blocks — the sweep is not exercising lane replay")
	}

	bS, bP := saveBytes(t, hSerial), saveBytes(t, hPar)
	if !bytes.Equal(bS, bP) {
		t.Fatalf("recovered images differ (serial %d bytes, parallel %d bytes): the fan-out is not byte-identical",
			len(bS), len(bP))
	}
}

// TestConcurrentQuarantineSameSubheap hammers quarantine on ONE sub-heap
// from many goroutines: exactly one quarantine event may be journaled, the
// first reason wins, and the health state must settle consistently —
// the qmu serialization satellite.
func TestConcurrentQuarantineSameSubheap(t *testing.T) {
	tel := obs.New()
	opts := testOptions()
	opts.Telemetry = tel
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	s := h.subheaps[0]
	const workers = 64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			s.quarantine(fmt.Sprintf("worker %d found corruption", w))
		}(w)
	}
	wg.Wait()

	if !s.isQuarantined() {
		t.Fatal("sub-heap not quarantined")
	}
	reason := s.quarantineReason()
	if reason == "" {
		t.Fatal("quarantine published before its reason")
	}
	events := 0
	for _, e := range tel.Events() {
		if e.Kind == obs.EventQuarantine && e.Subheap == 0 {
			events++
			if e.Detail != reason {
				t.Errorf("journaled reason %q != stored reason %q (first-reason-wins broken)", e.Detail, reason)
			}
		}
	}
	if events != 1 {
		t.Fatalf("journaled %d quarantine events for one sub-heap, want exactly 1", events)
	}
	if got := h.Health(); got != StateDegraded {
		t.Fatalf("Health = %v, want degraded (1/2 quarantined)", got)
	}
}

// TestConcurrentQuarantineHealthConvergence quarantines a majority of
// sub-heaps from concurrent goroutines — the serial-compute-then-store
// race recomputeHealth used to have would let a stale Degraded overwrite
// ReadOnly; with healthMu the final state must always be ReadOnly.
func TestConcurrentQuarantineHealthConvergence(t *testing.T) {
	opts := parallelRecoveryOptions(1)
	opts.HeapID = 0xC0DE
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const benched = 5 // of 8: a majority, so ReadOnly
	var wg sync.WaitGroup
	wg.Add(benched)
	for i := 0; i < benched; i++ {
		go func(i int) {
			defer wg.Done()
			h.subheaps[i].quarantine("concurrent corruption")
		}(i)
	}
	wg.Wait()

	if got := h.Health(); got != StateReadOnly {
		t.Fatalf("Health = %v after %d/8 concurrent quarantines, want read-only", got, benched)
	}
	if got := h.Stats().QuarantinedSubheaps; got != benched {
		t.Fatalf("QuarantinedSubheaps = %d, want %d", got, benched)
	}
}

// TestParallelScrubQuarantinesBoth corrupts records in two different
// sub-heaps and recovers with an 8-way pool: the concurrent ScrubOnLoad
// audits must bench exactly the two corrupt sub-heaps (one event each) and
// leave the rest serving — quarantine-under-parallelism end to end.
func TestParallelScrubQuarantinesBoth(t *testing.T) {
	tel := obs.New()
	opts := parallelRecoveryOptions(8)
	opts.HeapID = 0xBADC
	opts.Telemetry = tel
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}

	victims := []int{2, 5}
	for w := 0; w < h.Subheaps(); w++ {
		th, err := h.ThreadOn(w)
		if err != nil {
			t.Fatal(err)
		}
		p, err := th.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range victims {
			if w == v {
				slot := recordSlot(t, h, p)
				if err := h.Device().InjectBitFlip(slot+8, 0); err != nil {
					t.Fatal(err)
				}
			}
		}
		th.Close()
	}
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()

	h2, err := Load(h.Device(), opts)
	if err != nil {
		t.Fatalf("Load must degrade, not die: %v", err)
	}
	defer h2.Close()

	if got := h2.Stats().QuarantinedSubheaps; got != uint64(len(victims)) {
		t.Fatalf("QuarantinedSubheaps = %d, want %d", got, len(victims))
	}
	for _, v := range victims {
		if !h2.subheaps[v].isQuarantined() {
			t.Errorf("sub-heap %d not quarantined", v)
		}
	}
	perSubheap := map[int]int{}
	for _, e := range tel.Events() {
		if e.Kind == obs.EventQuarantine {
			perSubheap[e.Subheap]++
		}
	}
	for _, v := range victims {
		if perSubheap[v] != 1 {
			t.Errorf("sub-heap %d journaled %d quarantine events, want exactly 1", v, perSubheap[v])
		}
	}
	if got := h2.Health(); got != StateDegraded {
		t.Fatalf("Health = %v, want degraded", got)
	}
	// The in-service majority still allocates.
	th, err := h2.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th.Alloc(64); err != nil {
		t.Fatalf("healthy sub-heap Alloc after parallel quarantine: %v", err)
	}
	th.Close()
}

// TestRecoveryParallelismValidation pins the option contract: negatives are
// rejected, zero resolves to at least one worker.
func TestRecoveryParallelismValidation(t *testing.T) {
	opts := testOptions()
	opts.RecoveryParallelism = -1
	if _, err := Create(opts); err == nil {
		t.Fatal("Create accepted a negative RecoveryParallelism")
	}
	opts.RecoveryParallelism = 0
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if got := h.recoveryParallelism(); got < 1 {
		t.Fatalf("recoveryParallelism() = %d, want >= 1", got)
	}
}
