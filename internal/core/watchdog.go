package core

// Stall watchdog: a background goroutine that detects in-flight sub-heap
// operations holding their lock past Options.Watchdog.StallThreshold. The
// instrumented lock sites (subheap.lockOp/unlockOp) publish hold-start
// metadata in per-sub-heap atomics — op kind first, then a fresh token, then
// the start timestamp LAST, so a scanner that observes a non-zero timestamp
// sees a consistent op/token pair. Each detected stall is journalled once
// (EventStall, de-duplicated per lock acquisition by token), mirrored into
// the black box, and counted into poseidon_stalls_total. Every tick also
// publishes staged black-box records, so the ring stays near-current even on
// an idle heap.

import (
	"fmt"
	"sync"
	"time"

	"poseidon/internal/obs"
)

type watchdog struct {
	threshold time.Duration
	interval  time.Duration
	stop      chan struct{}
	done      chan struct{}
	halted    sync.Once
	// lastToken de-duplicates reports: one EventStall per stalled lock
	// acquisition per sub-heap, no matter how many ticks it stays stalled.
	// Touched only by the watchdog goroutine.
	lastToken []uint64
}

// startWatchdog launches the watchdog goroutine when configured. Called
// single-threaded from Create/Load before the heap is shared, so the lock
// sites' h.wd nil check never races a write.
func (h *Heap) startWatchdog() {
	if h.opts.Watchdog.StallThreshold <= 0 || h.tel == nil {
		return
	}
	w := &watchdog{
		threshold: h.opts.Watchdog.StallThreshold,
		interval:  h.opts.Watchdog.Interval,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		lastToken: make([]uint64, len(h.subheaps)),
	}
	h.wd = w
	go h.watchdogLoop(w)
}

// stopWatchdog halts the goroutine (idempotent) and waits for it. h.wd
// stays set so the lock sites keep their histograms without a racy nil-out.
func (h *Heap) stopWatchdog() {
	w := h.wd
	if w == nil {
		return
	}
	w.halted.Do(func() {
		close(w.stop)
		<-w.done
	})
}

func (h *Heap) watchdogLoop(w *watchdog) {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			// Final drain so records staged after the last tick reach the
			// ring before Close seals the header.
			_ = h.FlushBlackbox()
			return
		case <-t.C:
			h.watchdogScan(w)
			_ = h.FlushBlackbox()
		}
	}
}

// watchdogScan checks every sub-heap's hold-start atomics for an operation
// past the deadline.
func (h *Heap) watchdogScan(w *watchdog) {
	now := time.Now().UnixNano()
	for i, s := range h.subheaps {
		since := s.wdSince.Load()
		if since == 0 {
			continue
		}
		held := time.Duration(now - since)
		if held < w.threshold {
			continue
		}
		// wdSince was stored last, so op/token loaded now are the ones
		// belonging to this acquisition (or a newer one, which is also
		// stalled-or-fine on its own clock and will be re-checked).
		token := s.wdToken.Load()
		if token == w.lastToken[i] {
			continue // this stall is already on record
		}
		w.lastToken[i] = token
		op := obs.Op(s.wdOp.Load())
		h.stallsTotal.Add(1)
		h.tel.Emit(obs.EventStall, i, fmt.Sprintf(
			"op %s holding sub-heap %d lock for %s (threshold %s)",
			op, i, held.Round(time.Millisecond), w.threshold))
	}
}

// InjectStall arms a one-shot test failpoint: the next instrumented lock
// acquisition on the given sub-heap sleeps for d while holding the lock,
// long enough for the watchdog to observe a stall. Errors when the sub-heap
// does not exist; a heap without a watchdog ignores the armed value.
func (h *Heap) InjectStall(shard int, d time.Duration) error {
	if shard < 0 || shard >= len(h.subheaps) {
		return fmt.Errorf("poseidon: no sub-heap %d", shard)
	}
	h.subheaps[shard].stallInject.Store(d.Nanoseconds())
	return nil
}
