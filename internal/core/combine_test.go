package core

import (
	"errors"
	"testing"

	"poseidon/internal/nvm"
)

// combineOptions is the 1-sub-heap geometry the combined-commit tests run
// on: a single lock so every operation contends on the same combining
// array.
func combineOptions() Options {
	return Options{
		Subheaps:        1,
		SubheapUserSize: 512 << 10,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0xC0B1,
		CrashTracking:   true,
		CombinedCommits: true,
	}
}

// TestThreadRoutesAroundQuarantine pins the satellite fix for the raw
// round-robin shard pick: Thread() used to assign `counter % subheaps`
// blindly, so a new thread could be pinned to a quarantined sub-heap and
// fail every allocation. It must route through healthyShard instead.
func TestThreadRoutesAroundQuarantine(t *testing.T) {
	opts := combineOptions()
	opts.Subheaps = 2
	opts.MaxThreads = 16
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	h.subheaps[0].quarantine("test: simulated media failure")

	for i := 0; i < 8; i++ {
		th, err := h.Thread()
		if err != nil {
			t.Fatalf("Thread %d: %v", i, err)
		}
		if th.shard == 0 {
			t.Fatalf("Thread %d pinned to quarantined sub-heap 0", i)
		}
		if _, err := th.Alloc(64); err != nil {
			t.Fatalf("Thread %d alloc on healthy shard: %v", i, err)
		}
		th.Close()
	}

	// With every sub-heap quarantined registration must still succeed (the
	// thread is unusable for allocation, but Close/teardown paths need it).
	h.subheaps[1].quarantine("test: simulated media failure")
	th, err := h.Thread()
	if err != nil {
		t.Fatalf("Thread with all sub-heaps quarantined: %v", err)
	}
	if _, err := th.Alloc(64); !errors.Is(err, ErrSubheapQuarantined) {
		t.Fatalf("alloc on fully quarantined heap = %v, want ErrSubheapQuarantined", err)
	}
	th.Close()
}

// TestCombinedGroupSingleSeal is the tentpole's unit-level contract: a
// width-k group commit performs exactly ONE undo seal and ONE truncate
// regardless of k, and the combine counters attribute every op to it.
// In-group validation rejects (a double free staged against the group's own
// chained state) must not break the group or cost extra seals.
func TestCombinedGroupSingleSeal(t *testing.T) {
	h, err := Create(combineOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()

	// Warm up: one allocation formats the sub-heap and opens the undo log.
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	s := h.subheaps[0]

	seals0, trunc0 := s.undo.Seals(), s.undo.Truncates()
	st0 := h.Stats()

	ptrs, errs, err := h.CombineAllocBurst(0, []uint64{64, 256, 1024, 64})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range errs {
		if e != nil {
			t.Fatalf("burst alloc %d: %v", i, e)
		}
		if ptrs[i].IsNull() {
			t.Fatalf("burst alloc %d returned null pointer", i)
		}
	}
	if got := s.undo.Seals() - seals0; got != 1 {
		t.Fatalf("alloc group of 4 cost %d seals, want 1", got)
	}
	if got := s.undo.Truncates() - trunc0; got != 1 {
		t.Fatalf("alloc group of 4 cost %d truncates, want 1", got)
	}
	st1 := h.Stats()
	if got := st1.CombinedCommits - st0.CombinedCommits; got != 1 {
		t.Fatalf("CombinedCommits delta = %d, want 1", got)
	}
	if got := st1.CombinedOps - st0.CombinedOps; got != 4 {
		t.Fatalf("CombinedOps delta = %d, want 4", got)
	}

	// Free group with an in-group double free: ptrs[0] appears twice, so the
	// second free must observe the first one's STAGED status write through
	// the batch chain and reject with ErrDoubleFree — inside the same single
	// seal, without aborting the group.
	seals1, trunc1 := s.undo.Seals(), s.undo.Truncates()
	ferrs, err := h.CombineFreeBurst([]NVMPtr{ptrs[0], ptrs[1], ptrs[0], ptrs[2]})
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{0, 1, 3} {
		if ferrs[i] != nil {
			t.Fatalf("burst free %d: %v", i, ferrs[i])
		}
	}
	if !errors.Is(ferrs[2], ErrDoubleFree) {
		t.Fatalf("in-group double free = %v, want ErrDoubleFree", ferrs[2])
	}
	if got := s.undo.Seals() - seals1; got != 1 {
		t.Fatalf("free group cost %d seals, want 1", got)
	}
	if got := s.undo.Truncates() - trunc1; got != 1 {
		t.Fatalf("free group cost %d truncates, want 1", got)
	}
	st2 := h.Stats()
	if got := st2.CombinedOps - st1.CombinedOps; got != 3 {
		t.Fatalf("CombinedOps delta = %d, want 3 (double free rejected at stage)", got)
	}
	if st2.DoubleFrees-st1.DoubleFrees != 1 {
		t.Fatalf("DoubleFrees delta = %d, want 1", st2.DoubleFrees-st1.DoubleFrees)
	}
	if st2.CombineFallbacks != st1.CombineFallbacks {
		t.Fatalf("validation reject must not count as fallback (got +%d)",
			st2.CombineFallbacks-st1.CombineFallbacks)
	}

	// The heap audit agrees with the combined bookkeeping.
	report, err := h.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("audit after combined groups: %v", report.Problems)
	}
}

// runCombinedGroupScript executes the fixed 4-op group (alloc, tx-alloc,
// two frees) with a failpoint after `budget` stores, then crashes with the
// given policy, recovers and audits. The frees target two setup blocks p1
// and p2 whose post-recovery liveness must AGREE — the group is
// all-or-nothing because no op reports success before the group's single
// truncate.
func runCombinedGroupScript(t *testing.T, budget int64, policy nvm.CrashPolicy) (survived bool) {
	t.Helper()
	opts := combineOptions()
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := th.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	s, dev1, err := h.resolve(p1)
	if err != nil {
		t.Fatal(err)
	}
	_, dev2, err := h.resolve(p2)
	if err != nil {
		t.Fatal(err)
	}

	h.Device().FailAfter(budget)
	// One deterministic group touching every combined op variant: a plain
	// alloc, a transactional alloc (micro-log hook inside the group's commit
	// window, through the publishing thread's window), and two frees.
	ops := []*combineOp{
		{kind: combAlloc, size: 64},
		{kind: combAlloc, size: 256, lane: th.lane},
		{kind: combFree, dev: dev1},
		{kind: combFree, dev: dev2},
	}
	h.grant(th.pkru) // the publisher's rights the lane hook writes under
	s.burst(ops)
	h.revoke(th.pkru)
	h.Device().DisarmFailpoint()
	survived = true
	for i, op := range ops {
		if op.err != nil {
			survived = false
			if !errors.Is(op.err, nvm.ErrDeviceFailed) {
				t.Fatalf("budget %d: op %d unexpected error: %v", budget, i, op.err)
			}
		}
	}

	if _, cerr := h.Device().Crash(policy); cerr != nil {
		t.Fatal(cerr)
	}
	h2, err := Load(h.Device(), opts)
	if err != nil {
		t.Fatalf("budget %d: recovery failed: %v", budget, err)
	}
	report, err := h2.Check()
	if err != nil {
		t.Fatalf("budget %d: audit error: %v", budget, err)
	}
	if !report.OK() {
		t.Fatalf("budget %d: heap inconsistent after crash: %v", budget, report.Problems)
	}
	if report.PendingUndo != 0 || report.PendingTx != 0 {
		t.Fatalf("budget %d: recovery left pending work: %+v", budget, report)
	}

	// Group atomicity oracle: either BOTH frees landed or NEITHER did.
	// Probing by freeing: nil means the block was still live (free reverted
	// by recovery), ErrDoubleFree/ErrInvalidFree means it was already freed.
	th2, err := h2.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	alive := func(p NVMPtr) bool {
		err := th2.Free(p)
		if err == nil {
			return true
		}
		if errors.Is(err, ErrDoubleFree) || errors.Is(err, ErrInvalidFree) {
			return false
		}
		t.Fatalf("budget %d: liveness probe: %v", budget, err)
		return false
	}
	a1, a2 := alive(p1), alive(p2)
	if a1 != a2 {
		t.Fatalf("budget %d: group torn across crash: free(p1) landed=%v free(p2) landed=%v",
			budget, !a1, !a2)
	}
	if survived && a1 {
		t.Fatalf("budget %d: script survived but committed frees were reverted", budget)
	}

	// The recovered heap still combines.
	p, err := th2.Alloc(64)
	if err != nil {
		t.Fatalf("budget %d: alloc after recovery: %v", budget, err)
	}
	if err := th2.Free(p); err != nil {
		t.Fatalf("budget %d: free after recovery: %v", budget, err)
	}
	th2.Close()
	h2.Close()
	return survived
}

// TestSweepCombinedCommitTail kills the fixed 4-op combined group at EVERY
// device-store boundary inside its single group commit, under all three
// eviction policies, and audits recovery each time. This is the crash-proof
// of the tentpole's safety argument: one shared seal and one shared
// truncate for the whole group never tears its ops apart.
func TestSweepCombinedCommitTail(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep is slow")
	}
	// Measure the script's store count on a healthy run.
	groupOps := int64(1)
	for ; ; groupOps++ {
		if runCombinedGroupScript(t, groupOps, nvm.CrashPolicy{Mode: nvm.EvictNone}) {
			break
		}
		if groupOps > 5000 {
			t.Fatal("group never completed; failpoint accounting broken?")
		}
	}
	t.Logf("group performs %d stores; sweeping every boundary x 3 policies", groupOps)
	for b := int64(1); b < groupOps; b++ {
		for _, policy := range []nvm.CrashPolicy{
			{Mode: nvm.EvictNone},
			{Mode: nvm.EvictAll},
			{Mode: nvm.EvictRandom, Prob: 0.5, Seed: b * 7919},
		} {
			runCombinedGroupScript(t, b, policy)
		}
	}
}
