package core

// In-package tests for the persistent profile side-table (crash sweeps,
// torn-table detection, off-path cost) and the op-span tracer hooks. The
// end-to-end two-site leak attribution test lives in profile_accept_test.go
// (package core_test): the profiler trims core-internal frames from
// symbolized stacks, so distinct call sites must live outside this package.

import (
	"encoding/json"
	"testing"

	"poseidon/internal/nvm"
	"poseidon/internal/obs"
	"poseidon/internal/plog"
)

// profOptions is testOptions plus telemetry with allocation-site sampling
// and span tracing at the given 1-in-N rates.
func profOptions(profRate, traceRate int) Options {
	o := testOptions()
	o.Telemetry = obs.New()
	o.Profile = ProfileOptions{Rate: profRate}
	o.Trace = TraceOptions{Rate: traceRate, Buffer: 256}
	return o
}

func newProfHeap(t *testing.T, profRate, traceRate int) *Heap {
	t.Helper()
	h, err := Create(profOptions(profRate, traceRate))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return h
}

// liveProfileBytes sums live bytes across every tracked site.
func liveProfileBytes(h *Heap) int64 {
	var total int64
	for _, s := range h.Telemetry().Profiler().Sites() {
		total += s.LiveBytes
	}
	return total
}

// requireServiceable asserts the heap is fully in service: healthy state, no
// quarantined sub-heap, and allocation still works.
func requireServiceable(t *testing.T, h *Heap) {
	t.Helper()
	if hs := h.Health(); hs != StateHealthy {
		t.Fatalf("health = %v, want healthy", hs)
	}
	for _, sg := range h.Metrics().Subheaps {
		if sg.Quarantined {
			t.Fatalf("sub-heap %d quarantined: %s", sg.ID, sg.QuarantineReason)
		}
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatalf("Thread: %v", err)
	}
	defer th.Close()
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := th.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
}

func TestProfilePersistAndRecover(t *testing.T) {
	h := newProfHeap(t, 1, 0)
	th := newThread(t, h)
	var ptrs []NVMPtr
	for i := 0; i < 5; i++ {
		p, err := th.Alloc(100) // charges the 128 B class
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs[:2] {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	th.Close()
	if h.ProfileEpoch() != 1 {
		t.Fatalf("fresh epoch = %d", h.ProfileEpoch())
	}
	if err := h.PersistProfile(); err != nil {
		t.Fatalf("PersistProfile: %v", err)
	}
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	h2, err := Load(h.Device(), profOptions(1, 0))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if h2.ProfileEpoch() != 2 {
		t.Fatalf("epoch after restart = %d, want 2", h2.ProfileEpoch())
	}
	prof := h2.Telemetry().Profiler()
	sites := prof.Sites()
	if len(sites) == 0 {
		t.Fatal("no sites recovered from the side-table")
	}
	for _, s := range sites {
		if !s.Recovered || s.FirstEpoch != 1 {
			t.Fatalf("site %x recovered=%v firstEpoch=%d", s.Hash, s.Recovered, s.FirstEpoch)
		}
	}
	if got := liveProfileBytes(h2); got != 3*128 {
		t.Fatalf("recovered live bytes = %d, want %d", got, 3*128)
	}
	// The leak report names the pre-crash survivors.
	var leaked int64
	for _, s := range prof.LeakSites(h2.ProfileEpoch()) {
		leaked += s.LiveBytes
	}
	if leaked != 3*128 {
		t.Fatalf("leak-site bytes = %d, want %d", leaked, 3*128)
	}
	if h2.Telemetry().Snapshot().Events.ByKind["profile_reset"] != 0 {
		t.Fatal("clean recovery emitted a profile reset")
	}
	requireServiceable(t, h2)
	auditHeap(t, h2)
}

func TestProfileEpochAdvancesEachBoot(t *testing.T) {
	h := newProfHeap(t, 1, 0)
	th := newThread(t, h)
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	th.Close()
	for boot := 2; boot <= 4; boot++ {
		if err := h.PersistProfile(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
			t.Fatal(err)
		}
		h2, err := Load(h.Device(), profOptions(1, 0))
		if err != nil {
			t.Fatalf("boot %d: %v", boot, err)
		}
		if got := h2.ProfileEpoch(); got != uint64(boot) {
			t.Fatalf("boot %d: epoch = %d", boot, got)
		}
		if got := h2.Telemetry().Profiler().Epoch(); got != uint64(boot) {
			t.Fatalf("boot %d: profiler epoch = %d", boot, got)
		}
		h = h2
	}
}

// sweepWorkload builds a heap with a gen-1 snapshot (3 live 128 B blocks)
// persisted and 2 more sampled blocks not yet persisted (gen-2 material).
func sweepWorkload(t *testing.T) *Heap {
	t.Helper()
	h := newProfHeap(t, 1, 0)
	th := newThread(t, h)
	for i := 0; i < 3; i++ {
		if _, err := th.Alloc(100); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.PersistProfile(); err != nil {
		t.Fatalf("gen-1 persist: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := th.Alloc(100); err != nil {
			t.Fatal(err)
		}
	}
	th.Close()
	return h
}

// TestProfileCrashMidPersistSweep stops a snapshot write at EVERY interior
// device operation, crashes losing every unflushed cacheline, and reloads. The
// invariant under test is the A/B slot discipline: an interrupted write
// costs at most the generation being written — the previous snapshot is
// adopted intact, the profile is never detected torn, and the heap is never
// degraded by profile damage.
func TestProfileCrashMidPersistSweep(t *testing.T) {
	// Measure how many mutating device ops one snapshot write issues.
	ref := sweepWorkload(t)
	ref.Device().FailAfter(1 << 40)
	if err := ref.PersistProfile(); err != nil {
		t.Fatalf("reference persist: %v", err)
	}
	persistOps := int64(1<<40) - ref.Device().FailBudgetRemaining()
	ref.Device().DisarmFailpoint()
	if persistOps < 2 {
		t.Fatalf("persist issued only %d device ops", persistOps)
	}

	for n := int64(0); n <= persistOps; n++ {
		h := sweepWorkload(t)
		dev := h.Device()
		dev.FailAfter(n)
		perr := h.PersistProfile()
		dev.DisarmFailpoint()
		if (perr == nil) != (n >= persistOps) {
			t.Fatalf("budget %d: persist err = %v", n, perr)
		}
		// EvictNone drops every unflushed line — the adversarial case for an
		// interrupted snapshot (an unflushed new header must not count).
		if _, err := dev.Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
			t.Fatal(err)
		}
		h2, err := Load(dev, profOptions(1, 0))
		if err != nil {
			t.Fatalf("budget %d: Load: %v", n, err)
		}
		snap := h2.Telemetry().Snapshot()
		if snap.Events.ByKind["profile_reset"] != 0 {
			t.Fatalf("budget %d: interrupted persist tore the table", n)
		}
		want := int64(3 * 128) // gen 1
		if perr == nil {
			want = 5 * 128 // gen 2 completed
		}
		if got := liveProfileBytes(h2); got != want {
			t.Fatalf("budget %d: recovered live bytes = %d, want %d", n, got, want)
		}
		requireServiceable(t, h2)
		auditHeap(t, h2)
	}
}

// TestProfileTornTableResetsOnly corrupts BOTH snapshot slot headers — the
// double fault the A/B scheme cannot ride out — and verifies the contained
// failure mode: the profile resets and journals why; nothing is
// quarantined, health stays green, allocation keeps working.
func TestProfileTornTableResetsOnly(t *testing.T) {
	h := newProfHeap(t, 1, 0)
	th := newThread(t, h)
	for i := 0; i < 3; i++ {
		if _, err := th.Alloc(100); err != nil {
			t.Fatal(err)
		}
	}
	th.Close()
	if err := h.PersistProfile(); err != nil {
		t.Fatal(err)
	}
	arena := h.lay.profArena()
	garbage := make([]byte, plog.SiteHeaderSize)
	for i := range garbage {
		garbage[i] = 0xAB
	}
	for i := 0; i < plog.SiteSlots; i++ {
		if err := h.Device().Write(arena.HeaderOff(i), garbage); err != nil {
			t.Fatal(err)
		}
	}
	// EvictAll drains the cache, so the garbage headers reach the media.
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictAll}); err != nil {
		t.Fatal(err)
	}
	h2, err := Load(h.Device(), profOptions(1, 0))
	if err != nil {
		t.Fatalf("Load with torn side-table must not fail: %v", err)
	}
	snap := h2.Telemetry().Snapshot()
	if snap.Events.ByKind["profile_reset"] != 1 {
		t.Fatalf("profile_reset events = %d, want 1", snap.Events.ByKind["profile_reset"])
	}
	if snap.Events.ByKind["quarantine"] != 0 {
		t.Fatal("torn profile table quarantined a sub-heap")
	}
	if sites := h2.Telemetry().Profiler().Sites(); len(sites) != 0 {
		t.Fatalf("torn table yielded %d sites, want a fresh profile", len(sites))
	}
	if h2.ProfileEpoch() != 1 {
		t.Fatalf("epoch after reset = %d, want 1", h2.ProfileEpoch())
	}
	requireServiceable(t, h2)
	auditHeap(t, h2)
	// The next persist starts a fresh generation history over the garbage.
	th2 := newThread(t, h2)
	if _, err := th2.Alloc(100); err != nil {
		t.Fatal(err)
	}
	th2.Close()
	if err := h2.PersistProfile(); err != nil {
		t.Fatalf("persist after reset: %v", err)
	}
	if _, err := h2.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	h3, err := Load(h2.Device(), profOptions(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := liveProfileBytes(h3); got != 128 {
		t.Fatalf("live bytes after reset+persist = %d, want 128", got)
	}
}

// TestProfileRateZeroOffPath pins the rate=0 contract: threads carry a nil
// profiler pointer (the magazine fast path pays one nil check and nothing
// else), nothing is sampled, and the ClassProfile attribution bucket stays
// at zero — no profile I/O ever reaches the device.
func TestProfileRateZeroOffPath(t *testing.T) {
	h := newProfHeap(t, 0, 0)
	th := newThread(t, h)
	if th.prof != nil {
		t.Fatal("rate 0 thread holds a profiler pointer")
	}
	var ptrs []NVMPtr
	for i := 0; i < 50; i++ {
		p, err := th.Alloc(uint64(64 + i))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	th.Close()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if c := h.Telemetry().Attribution().Snapshot()[nvm.ClassProfile]; c != (nvm.ClassCounters{}) {
		t.Fatalf("ClassProfile attribution = %+v, want all zero", c)
	}
	st := h.Telemetry().Profiler().Stats()
	if st.Enabled || st.SampledAllocs != 0 || st.PersistedGens != 0 || st.Sites != 0 {
		t.Fatalf("rate-0 profiler stats = %+v", st)
	}
}

func TestTraceSpansForSampledOps(t *testing.T) {
	o := profOptions(0, 1) // trace every operation
	o.Magazines = MagazineOptions{Capacity: 8, Classes: 4}
	h, err := Create(o)
	if err != nil {
		t.Fatal(err)
	}
	th := newThread(t, h)
	// Small allocs refill the magazine (refill spans); a big alloc and its
	// free take the sub-heap slow path directly (alloc/free spans).
	for i := 0; i < 8; i++ {
		if _, err := th.Alloc(128); err != nil {
			t.Fatal(err)
		}
	}
	big, err := th.Alloc(128 << 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(big); err != nil {
		t.Fatal(err)
	}
	th.Close()

	tr := h.Telemetry().Tracer()
	spans := tr.Spans()
	seen := map[obs.Op]obs.Span{}
	for _, s := range spans {
		seen[s.Op] = s
	}
	for _, op := range []obs.Op{obs.OpAlloc, obs.OpFree, obs.OpRefill} {
		if _, ok := seen[op]; !ok {
			t.Fatalf("no %v span among %d spans", op, len(spans))
		}
	}
	if sp := seen[obs.OpAlloc]; sp.Subheap < 0 || sp.Bytes != 128<<10 {
		t.Fatalf("alloc span = %+v", sp)
	}
	if sp := seen[obs.OpRefill]; sp.Writes == 0 || sp.Bytes == 0 {
		t.Fatalf("refill span carries no device work: %+v", sp)
	}
	var ct struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(h.TraceJSON(), &ct); err != nil {
		t.Fatalf("TraceJSON unparseable: %v", err)
	}
	if len(ct.TraceEvents) != len(tr.Spans()) {
		t.Fatalf("trace exports %d events for %d spans", len(ct.TraceEvents), len(tr.Spans()))
	}
}

// Profiling-overhead benchmarks (EXPERIMENTS.md): with telemetry on but
// Profile.Rate 0 the alloc path pays exactly one nil check over plain
// telemetry; sampling amortizes the stack capture over 1/N allocations.
func BenchmarkAllocFreeProfileOff(b *testing.B) {
	o := profOptions(0, 0)
	o.CrashTracking = false
	benchAllocFree(b, o)
}

func BenchmarkAllocFreeProfileSampled(b *testing.B) {
	o := profOptions(64, 0)
	o.CrashTracking = false
	benchAllocFree(b, o)
}

func BenchmarkAllocFreeProfileEvery(b *testing.B) {
	o := profOptions(1, 0)
	o.CrashTracking = false
	benchAllocFree(b, o)
}

func TestTraceRecoverySpanForced(t *testing.T) {
	h := newProfHeap(t, 0, 1)
	th := newThread(t, h)
	if _, err := th.TxAlloc(64, false); err != nil { // left open: recovery rolls it back
		t.Fatal(err)
	}
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	h2, err := Load(h.Device(), profOptions(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	var rec *obs.Span
	for _, s := range h2.Telemetry().Tracer().Spans() {
		if s.Op == obs.OpRecovery {
			s := s
			rec = &s
		}
	}
	if rec == nil {
		t.Fatal("recovery produced no forced span")
	}
	if rec.Subheap != -1 || rec.Lane != -1 || rec.Err != "" {
		t.Fatalf("recovery span = %+v", rec)
	}
	if rec.Writes == 0 || rec.Flushes == 0 {
		t.Fatalf("recovery span carries no device work: %+v", rec)
	}
}
