package core

import (
	"errors"
	"testing"

	"poseidon/internal/nvm"
)

// TestCrashSweepEveryStore is the deterministic companion of
// TestCrashInjection: a fixed operation script is killed at EVERY store
// boundary (failpoint budgets 1..N), crashed with adversarial eviction,
// recovered and audited. Unlike the randomized test, this provably covers
// every interior persist point of the script.
func TestCrashSweepEveryStore(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sweep is slow")
	}
	// First, measure the script's store count on a healthy run.
	storeBudget := int64(1)
	for ; ; storeBudget++ {
		survived, _ := runScript(t, storeBudget, 1)
		if survived {
			break
		}
		if storeBudget > 5000 {
			t.Fatal("script never completed; failpoint accounting broken?")
		}
	}
	t.Logf("script performs %d stores; sweeping every boundary", storeBudget)
	step := int64(1)
	if storeBudget > 300 {
		step = storeBudget / 300 // cap the sweep at ~300 crash points
	}
	for b := int64(1); b < storeBudget; b += step {
		runScript(t, b, b*7919)
	}
}

// runScript executes the fixed script with a failpoint after `budget`
// stores, then crashes, recovers and audits. Returns whether the script
// ran to completion without hitting the failpoint.
func runScript(t *testing.T, budget, seed int64) (survived bool, h *Heap) {
	t.Helper()
	opts := Options{
		Subheaps:        1,
		SubheapUserSize: 512 << 10,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      4,
		HeapID:          77,
		CrashTracking:   true,
	}
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}

	h.Device().FailAfter(budget)
	// The script: singleton allocs of mixed sizes, frees, a transactional
	// burst with commit, one without, and a root update.
	script := func() error {
		var ptrs []NVMPtr
		for _, size := range []uint64{64, 300, 4096, 64} {
			p, err := th.Alloc(size)
			if err != nil {
				return err
			}
			ptrs = append(ptrs, p)
		}
		if err := th.Free(ptrs[1]); err != nil {
			return err
		}
		if _, err := th.TxAlloc(128, false); err != nil {
			return err
		}
		if _, err := th.TxAlloc(128, true); err != nil {
			return err
		}
		if err := h.SetRoot(ptrs[0]); err != nil {
			return err
		}
		if _, err := th.TxAlloc(256, false); err != nil { // left open
			return err
		}
		return th.Free(ptrs[3])
	}
	err = script()
	h.Device().DisarmFailpoint()
	survived = err == nil
	if err != nil && !errors.Is(err, nvm.ErrDeviceFailed) {
		t.Fatalf("budget %d: unexpected script error: %v", budget, err)
	}

	// Crash, recover, audit. The eviction policy rotates so every crash
	// point is also tested with nothing evicted and everything evicted,
	// not just random survival.
	policy := nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: seed}
	switch budget % 3 {
	case 1:
		policy = nvm.CrashPolicy{Mode: nvm.EvictNone}
	case 2:
		policy = nvm.CrashPolicy{Mode: nvm.EvictAll}
	}
	if _, cerr := h.Device().Crash(policy); cerr != nil {
		t.Fatal(cerr)
	}
	h2, err := Load(h.Device(), opts)
	if err != nil {
		t.Fatalf("budget %d: recovery failed: %v", budget, err)
	}
	report, err := h2.Check()
	if err != nil {
		t.Fatalf("budget %d: audit error: %v", budget, err)
	}
	if !report.OK() {
		t.Fatalf("budget %d: heap inconsistent after crash: %v", budget, report.Problems)
	}
	if report.PendingUndo != 0 || report.PendingTx != 0 {
		t.Fatalf("budget %d: recovery left pending work: %+v", budget, report)
	}
	// The recovered heap allocates and frees normally.
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	p, err := th2.Alloc(64)
	if err != nil {
		t.Fatalf("budget %d: alloc after recovery: %v", budget, err)
	}
	if err := th2.Free(p); err != nil {
		t.Fatalf("budget %d: free after recovery: %v", budget, err)
	}
	th2.Close()
	return survived, h2
}
