package core

import (
	"testing"

	"poseidon/internal/mpk"
)

// TestLimitationWrpkruHijack documents the limitation §8 acknowledges:
// WRPKRU is an unprivileged instruction, so an attacker who hijacks
// control flow can execute it and grant themselves metadata write access.
// Poseidon does not (and cannot, without binary inspection à la ERIM or
// Hodor) prevent this. The test pins the exact boundary of the guarantee:
// data bugs are blocked; control-flow hijack is out of scope.
func TestLimitationWrpkruHijack(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	metaOff := h.lay.subheapBase(0) + 256
	payload := uint64(0xBADC0DE)

	// A stray store from a well-behaved (merely buggy) program faults.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("store should have faulted before the hijack")
			}
		}()
		_ = th.Window().WriteU64(metaOff, payload)
	}()

	// The hijack: attacker-controlled code executes WRPKRU on its own
	// thread, then the same store succeeds — metadata corrupted.
	attacker := h.Unit().NewThread(mpk.RightsRO)
	attacker.SetRights(metadataKey, mpk.RightsRW) // the unprivileged WRPKRU
	win := mpk.NewWindow(h.Device(), attacker)
	if err := win.WriteU64(metaOff, payload); err != nil {
		t.Fatalf("hijacked store failed unexpectedly: %v", err)
	}
	got, err := win.ReadU64(metaOff)
	if err != nil {
		t.Fatal(err)
	}
	if got != payload {
		t.Fatalf("metadata word = %#x, want the attacker's payload", got)
	}
	// (Deliberately no assertion that Poseidon detects this — it cannot,
	// and the paper says so.)
}

// TestHardenedModeBlocksHijack verifies the §8 mitigation implemented as
// ProtectMPKHardened: with the unit sealed (modeling ERIM/Hodor binary
// inspection), the attacker's WRPKRU traps, and the metadata stays
// protected — while the allocator itself keeps working through its vetted
// grant/revoke paths.
func TestHardenedModeBlocksHijack(t *testing.T) {
	opts := testOptions()
	opts.Protection = ProtectMPKHardened
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	// Normal operation works: grant/revoke go through the authority.
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	// The hijack: attacker executes WRPKRU — now it traps.
	attacker := h.Unit().NewThread(mpk.RightsRO)
	trapped := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*mpk.SwitchViolationError); !ok {
					panic(r)
				}
				trapped = true
			}
		}()
		attacker.SetRights(metadataKey, mpk.RightsRW)
	}()
	if !trapped {
		t.Fatal("unauthorized WRPKRU did not trap on the sealed unit")
	}
	// And transactional allocation (which grants on the caller's thread
	// too) still works under hardening.
	if _, err := th.TxAlloc(64, true); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h)
}
