package core

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"poseidon/internal/nvm"
)

// freeAnchorOff returns the device offset of the first nonempty free-list
// anchor (head word) in the shard's header — the corruption target for
// mirror-restore tests.
func freeAnchorOff(t *testing.T, h *Heap, shard int) uint64 {
	t.Helper()
	s := h.subheaps[shard]
	s.mu.Lock()
	h.grant(s.thread)
	g := s.mgr.Geometry()
	off := uint64(0)
	for c := 0; c < g.NumClasses; c++ {
		head, err := s.mgr.FreeHead(s.win, c)
		if err != nil {
			h.revoke(s.thread)
			s.mu.Unlock()
			t.Fatal(err)
		}
		if head != 0 {
			off = g.FreeListOff + uint64(c)*16
			break
		}
	}
	h.revoke(s.thread)
	s.mu.Unlock()
	if off == 0 {
		t.Fatal("no nonempty free list in shard")
	}
	return off
}

// fillPattern writes a recognizable payload into a block and returns it.
func fillPattern(t *testing.T, th *Thread, p NVMPtr, n int, seed byte) []byte {
	t.Helper()
	pat := make([]byte, n)
	for i := range pat {
		pat[i] = seed + byte(i)
	}
	if err := th.Persist(p, 0, pat); err != nil {
		t.Fatal(err)
	}
	return pat
}

func checkPattern(t *testing.T, th *Thread, p NVMPtr, pat []byte, what string) {
	t.Helper()
	got := make([]byte, len(pat))
	if err := th.Read(p, 0, got); err != nil {
		t.Fatalf("%s: read back: %v", what, err)
	}
	if !bytes.Equal(got, pat) {
		t.Fatalf("%s: payload corrupted", what)
	}
}

// TestRepairAfterBitFlip is the self-healing acceptance test for the
// rebuild-by-table-walk path: a media bit flip in a block record benches
// the sub-heap at load; Repair must drop the poisoned record, re-cover its
// extent, return the sub-heap to service with zero user-data loss, and
// bring health back from degraded.
func TestRepairAfterBitFlip(t *testing.T) {
	opts := testOptions()
	opts.ScrubOnLoad = true
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}

	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	victimPat := fillPattern(t, th0, victim, 128, 0x11)
	sentinel, err := th0.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	sentinelPat := fillPattern(t, th0, sentinel, 256, 0x77)
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th1.Alloc(128); err != nil {
		t.Fatal(err)
	}
	th0.Close()
	th1.Close()

	// Corrupt the victim's size word on media: 128 -> 129.
	slot := recordSlot(t, h, victim)
	if err := h.Device().InjectBitFlip(slot+8, 0); err != nil {
		t.Fatal(err)
	}

	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()
	h2, err := Load(h.Device(), opts)
	if err != nil {
		t.Fatalf("Load must degrade, not die: %v", err)
	}
	defer h2.Close()
	if !h2.subheaps[0].isQuarantined() {
		t.Fatal("sub-heap 0 not quarantined after bit flip")
	}
	if got := h2.Health(); got != StateDegraded {
		t.Fatalf("Health = %v, want degraded", got)
	}

	// Repairing a healthy sub-heap is an error; the victim is repairable.
	if err := h2.Repair(1); !errors.Is(err, ErrNotQuarantined) {
		t.Fatalf("Repair(healthy) = %v, want ErrNotQuarantined", err)
	}
	if err := h2.Repair(0); err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if h2.subheaps[0].isQuarantined() {
		t.Fatal("sub-heap 0 still quarantined after repair")
	}
	if got := h2.Health(); got != StateHealthy {
		t.Fatalf("Health after repair = %v, want healthy", got)
	}
	st := h2.Stats()
	if st.RepairedSubheaps != 1 {
		t.Fatalf("RepairedSubheaps = %d, want 1", st.RepairedSubheaps)
	}
	if st.RepairedBytes != opts.SubheapUserSize {
		t.Fatalf("RepairedBytes = %d, want %d", st.RepairedBytes, opts.SubheapUserSize)
	}
	report, err := h2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() || !report.Healthy() {
		t.Fatalf("post-repair audit: OK=%v Healthy=%v problems=%v",
			report.OK(), report.Healthy(), report.Problems)
	}

	// Zero user-data loss: the sentinel is untouched, and even the victim's
	// extent was re-covered as allocated with its bytes intact.
	th, err := h2.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	checkPattern(t, th, sentinel, sentinelPat, "sentinel")
	checkPattern(t, th, victim, victimPat, "victim")
	if err := th.Free(victim); err != nil {
		t.Fatalf("Free(victim) after repair: %v", err)
	}
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if p.Subheap() != 0 {
		t.Fatalf("alloc after repair landed in sub-heap %d, want 0 (back in service)", p.Subheap())
	}
	auditHeap(t, h2)

	// The repaired state is durable: another crash/reload stays healthy.
	h3 := func() *Heap {
		if _, err := h2.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
			t.Fatal(err)
		}
		th.Close()
		_ = h2.Close()
		h3, err := Load(h2.Device(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return h3
	}()
	defer h3.Close()
	if got := h3.Health(); got != StateHealthy {
		t.Fatalf("Health after reload = %v, want healthy", got)
	}
	tr, err := h3.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	checkPattern(t, tr, sentinel, sentinelPat, "sentinel after reload")
	auditHeap(t, h3)
}

// TestRepairMirrorRestore pins the cheap repair path: when only the primary
// header is damaged and the table records are sound, repair restores the
// free-list anchors from the metadata mirror instead of rebuilding.
func TestRepairMirrorRestore(t *testing.T) {
	h := newTestHeap(t)
	defer h.Close()
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	p0, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	pat := fillPattern(t, th0, p0, 128, 0x23)
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th1.Alloc(128); err != nil {
		t.Fatal(err)
	}
	th1.Close()

	// Capture known-good anchors in the mirror, then smash a live anchor:
	// the head now points one slot over, orphaning a real free block.
	if err := h.SyncMirrors(); err != nil {
		t.Fatal(err)
	}
	anchor := freeAnchorOff(t, h, 0)
	if err := h.Device().InjectBitFlip(anchor, 6); err != nil {
		t.Fatal(err)
	}

	// A synchronous scrub pass detects it, benches the shard, and repairs
	// it on the spot — via the mirror, not a rebuild.
	if err := h.ScrubPass(); err != nil {
		t.Fatalf("ScrubPass: %v", err)
	}
	if h.subheaps[0].isQuarantined() {
		t.Fatal("sub-heap 0 still quarantined after scrub auto-repair")
	}
	st := h.Stats()
	if st.MirrorRestores != 1 {
		t.Fatalf("MirrorRestores = %d, want 1 (repair should not have needed a rebuild)", st.MirrorRestores)
	}
	if st.RepairedSubheaps != 1 {
		t.Fatalf("RepairedSubheaps = %d, want 1", st.RepairedSubheaps)
	}
	if got := h.Health(); got != StateHealthy {
		t.Fatalf("Health = %v, want healthy", got)
	}
	checkPattern(t, th0, p0, pat, "payload")
	if err := th0.Free(p0); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h)
}

// TestReadOnlyHealthGating quarantines a majority of sub-heaps and checks
// the read-only regime: mutations are rejected with ErrReadOnly, reads keep
// working, and RepairAll lifts the heap back to healthy.
func TestReadOnlyHealthGating(t *testing.T) {
	opts := testOptions()
	opts.Subheaps = 4
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	pat := fillPattern(t, th, p, 128, 0x42)
	if err := h.SetRoot(p); err != nil {
		t.Fatal(err)
	}

	for _, i := range []int{1, 2, 3} {
		h.subheaps[i].quarantine("test: simulated media failure")
	}
	if got := h.Health(); got != StateReadOnly {
		t.Fatalf("Health = %v, want read-only with 3/4 quarantined", got)
	}

	if _, err := th.Alloc(64); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Alloc = %v, want ErrReadOnly", err)
	}
	if _, err := th.TxAlloc(64, true); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("TxAlloc = %v, want ErrReadOnly", err)
	}
	if err := th.Free(p); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Free = %v, want ErrReadOnly", err)
	}
	if err := th.Write(p, 0, []byte{1}); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Write = %v, want ErrReadOnly", err)
	}
	if err := h.SetRoot(p); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("SetRoot = %v, want ErrReadOnly", err)
	}
	// Reads stay up: degraded capacity must not take data hostage.
	checkPattern(t, th, p, pat, "payload under read-only")
	if root, err := h.Root(); err != nil || root != p {
		t.Fatalf("Root under read-only = %v, %v", root, err)
	}

	n, err := h.RepairAll()
	if err != nil {
		t.Fatalf("RepairAll: %v", err)
	}
	if n != 3 {
		t.Fatalf("RepairAll repaired %d, want 3", n)
	}
	if got := h.Health(); got != StateHealthy {
		t.Fatalf("Health after RepairAll = %v, want healthy", got)
	}
	if _, err := th.Alloc(64); err != nil {
		t.Fatalf("Alloc after RepairAll: %v", err)
	}
	auditHeap(t, h)
}

// TestCrashMidRepairRequarantines checks repair's own crash consistency: a
// power failure at an arbitrary point inside Repair must leave the sub-heap
// quarantined on the next load (interrupted-repair marker or the original
// damage), and a fresh Repair must then succeed. The exhaustive sweep lives
// in the torture package; this pins a few representative points.
func TestCrashMidRepairRequarantines(t *testing.T) {
	for _, point := range []int64{1, 4, 16} {
		opts := testOptions()
		opts.ScrubOnLoad = true
		h, err := Create(opts)
		if err != nil {
			t.Fatal(err)
		}
		th0, err := h.ThreadOn(0)
		if err != nil {
			t.Fatal(err)
		}
		victim, err := th0.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		sentinel, err := th0.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		pat := fillPattern(t, th0, sentinel, 256, 0x3c)
		th1, err := h.ThreadOn(1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := th1.Alloc(128); err != nil {
			t.Fatal(err)
		}
		th0.Close()
		th1.Close()
		slot := recordSlot(t, h, victim)
		if err := h.Device().InjectBitFlip(slot+8, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
			t.Fatal(err)
		}
		_ = h.Close()
		h2, err := Load(h.Device(), opts)
		if err != nil {
			t.Fatalf("point %d: Load: %v", point, err)
		}

		// Die partway through the repair, then power-cycle.
		h2.Device().FailAfter(point)
		if err := h2.Repair(0); err == nil {
			t.Fatalf("point %d: Repair must trip the failpoint", point)
		}
		h2.Device().DisarmFailpoint()
		if !h2.subheaps[0].isQuarantined() {
			t.Fatalf("point %d: failed repair must leave the shard benched", point)
		}
		if _, err := h2.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
			t.Fatal(err)
		}
		_ = h2.Close()
		h3, err := Load(h2.Device(), opts)
		if err != nil {
			t.Fatalf("point %d: Load after mid-repair crash: %v", point, err)
		}
		if !h3.subheaps[0].isQuarantined() {
			t.Fatalf("point %d: shard must be re-quarantined after interrupted repair", point)
		}
		if err := h3.Repair(0); err != nil {
			t.Fatalf("point %d: second Repair: %v", point, err)
		}
		if got := h3.Health(); got != StateHealthy {
			t.Fatalf("point %d: Health = %v, want healthy", point, got)
		}
		tr, err := h3.ThreadOn(0)
		if err != nil {
			t.Fatal(err)
		}
		checkPattern(t, tr, sentinel, pat, "sentinel")
		tr.Close()
		auditHeap(t, h3)
		_ = h3.Close()
	}
}

// TestOnlineScrubberRepairsLiveCorruption runs the background scrubber at a
// tight interval, injects a media bit flip into a live heap, and waits for
// the detect → quarantine → repair → healthy cycle to complete with no
// intervention and no data loss.
func TestOnlineScrubberRepairsLiveCorruption(t *testing.T) {
	opts := testOptions()
	opts.OnlineScrub = OnlineScrubOptions{Interval: time.Millisecond}
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th0.Close()
	victim, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	sentinel, err := th0.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	pat := fillPattern(t, th0, sentinel, 256, 0x55)
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := th1.Alloc(128); err != nil {
		t.Fatal(err)
	}
	th1.Close()

	// Inject under the sub-heap lock: a real media flip is not a program
	// write, but the race detector cannot know that, and the scrubber is
	// already auditing this shard concurrently.
	slot := recordSlot(t, h, victim)
	h.subheaps[0].mu.Lock()
	err = h.Device().InjectBitFlip(slot+8, 0)
	h.subheaps[0].mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		st := h.Stats()
		if st.RepairedSubheaps >= 1 && h.Health() == StateHealthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber did not heal the heap: health=%v repaired=%d quarantined=%d",
				h.Health(), st.RepairedSubheaps, st.QuarantinedSubheaps)
		}
		time.Sleep(time.Millisecond)
	}

	checkPattern(t, th0, sentinel, pat, "sentinel")
	if err := th0.Free(victim); err != nil {
		t.Fatalf("Free(victim) after online repair: %v", err)
	}
	if _, err := th0.Alloc(64); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h)
}

// Online-scrub overhead benchmarks (numbers recorded in EXPERIMENTS.md);
// benchAllocFree is shared with the telemetry benchmarks in metrics_test.go.
func BenchmarkAllocFreeScrubOff(b *testing.B) {
	benchAllocFree(b, testOptions())
}

func BenchmarkAllocFreeScrubTight(b *testing.B) {
	opts := testOptions()
	opts.OnlineScrub = OnlineScrubOptions{Interval: 100 * time.Microsecond}
	benchAllocFree(b, opts)
}

func BenchmarkAllocFreeScrubThrottled(b *testing.B) {
	opts := testOptions()
	opts.OnlineScrub = OnlineScrubOptions{Interval: time.Millisecond, Throttle: 200 * time.Microsecond}
	benchAllocFree(b, opts)
}
