package core

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"poseidon/internal/mpk"
	"poseidon/internal/nvm"
)

// testOptions is a small, fast heap with crash tracking on.
func testOptions() Options {
	return Options{
		Subheaps:        2,
		SubheapUserSize: 1 << 20, // 1 MiB user per sub-heap
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		HeapID:          0xABCDE,
		CrashTracking:   true,
	}
}

func newTestHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := Create(testOptions())
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return h
}

func newThread(t *testing.T, h *Heap) *Thread {
	t.Helper()
	th, err := h.Thread()
	if err != nil {
		t.Fatalf("Thread: %v", err)
	}
	return th
}

// reload simulates a restart: crash the device with the given policy and
// Load a fresh heap over it (runs recovery).
func reload(t *testing.T, h *Heap, policy nvm.CrashPolicy) *Heap {
	t.Helper()
	if _, err := h.Device().Crash(policy); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	_ = h.Close()
	h2, err := Load(h.Device(), testOptions())
	if err != nil {
		t.Fatalf("Load after crash: %v", err)
	}
	return h2
}

// auditHeap runs the full consistency audit (Heap.Check) and fails the
// test on any structural problem.
func auditHeap(t *testing.T, h *Heap) {
	t.Helper()
	report, err := h.Check()
	if err != nil {
		t.Fatalf("heap audit: %v", err)
	}
	if !report.OK() {
		t.Fatalf("heap audit found %d problems: %v", len(report.Problems), report.Problems)
	}
}

func TestCreateAndBasicAllocFree(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()

	p, err := th.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if p.IsNull() {
		t.Fatal("null pointer returned")
	}
	if p.HeapID != h.HeapID() {
		t.Fatalf("heap id %#x, want %#x", p.HeapID, h.HeapID())
	}
	size, err := th.BlockSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if size != 128 { // 100 rounds to the 128 B class
		t.Fatalf("block size = %d, want 128", size)
	}
	if err := th.Free(p); err != nil {
		t.Fatalf("Free: %v", err)
	}
	auditHeap(t, h)
}

func TestAllocSizeBounds(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	if _, err := th.Alloc(0); !errors.Is(err, ErrBadSize) {
		t.Fatalf("Alloc(0): %v", err)
	}
	if _, err := th.Alloc(testOptions().SubheapUserSize + 1); !errors.Is(err, ErrBadSize) {
		t.Fatalf("oversized alloc: %v", err)
	}
	// Allocating exactly the whole sub-heap works once.
	p, err := th.Alloc(testOptions().SubheapUserSize)
	if err != nil {
		t.Fatalf("whole-region alloc: %v", err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestAllocationsDoNotOverlap(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	rng := rand.New(rand.NewSource(1))
	type alloc struct {
		p    NVMPtr
		size uint64
	}
	var live []alloc
	for i := 0; i < 400; i++ {
		if len(live) > 0 && rng.Intn(3) == 0 {
			k := rng.Intn(len(live))
			if err := th.Free(live[k].p); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(rng.Intn(4096) + 1)
		p, err := th.Alloc(size)
		if errors.Is(err, ErrOutOfMemory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, alloc{p, size})
	}
	// Overlap check via raw offsets.
	type span struct{ lo, hi uint64 }
	var spans []span
	for _, a := range live {
		dev, err := h.RawOffset(a.p)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := th.BlockSize(a.p)
		if err != nil {
			t.Fatal(err)
		}
		if bs < a.size {
			t.Fatalf("block smaller than requested: %d < %d", bs, a.size)
		}
		spans = append(spans, span{dev, dev + bs})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("blocks overlap: [%#x,%#x) and [%#x,%#x)",
					spans[i].lo, spans[i].hi, spans[j].lo, spans[j].hi)
			}
		}
	}
	auditHeap(t, h)
}

func TestDataRoundTrip(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte("poseidon"), 32)
	if err := th.Persist(p, 0, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if err := th.Read(p, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("data mismatch")
	}
	if err := th.WriteU64(p, 8, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := th.ReadU64(p, 8); v != 42 {
		t.Fatalf("u64 = %d", v)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("second free: %v, want ErrDoubleFree", err)
	}
	if got := h.Stats().DoubleFrees; got != 1 {
		t.Fatalf("double-free counter = %d", got)
	}
	auditHeap(t, h)
}

func TestInvalidFreeRejected(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	// Interior pointer: not a block start.
	interior := makePtr(h.HeapID(), p.Subheap(), p.Offset()+64)
	if err := th.Free(interior); !errors.Is(err, ErrInvalidFree) {
		t.Fatalf("interior free: %v, want ErrInvalidFree", err)
	}
	// Wrong heap ID.
	foreign := makePtr(h.HeapID()+1, 0, 0)
	if err := th.Free(foreign); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("foreign free: %v, want ErrBadPointer", err)
	}
	// Out-of-range sub-heap.
	badSub := makePtr(h.HeapID(), 200, 0)
	if err := th.Free(badSub); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("bad sub-heap free: %v, want ErrBadPointer", err)
	}
	if got := h.Stats().InvalidFrees; got != 1 {
		t.Fatalf("invalid-free counter = %d", got)
	}
	// The original block is untouched and still freeable.
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h)
}

func TestMetadataWriteBlockedByMPK(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	// A stray store to the sub-heap's metadata region must fault.
	metaOff := h.lay.subheapBase(th.Shard()) + 128
	var fault *mpk.ProtectionError
	func() {
		defer func() {
			if r := recover(); r != nil {
				pe, ok := r.(*mpk.ProtectionError)
				if !ok {
					panic(r)
				}
				fault = pe
			}
		}()
		_ = th.Window().WriteU64(metaOff, 0xBAD)
	}()
	if fault == nil {
		t.Fatal("stray metadata write did not fault")
	}
	if fault.Key != metadataKey {
		t.Fatalf("fault key = %d", fault.Key)
	}
	auditHeap(t, h)
}

func TestHeapOverflowIntoMetadataFaults(t *testing.T) {
	// The Figure 3 scenario against Poseidon: writing past the end of the
	// last block of a sub-heap's user region runs into the next sub-heap's
	// metadata and faults instead of corrupting it.
	h := newTestHeap(t)
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	p, err := th.Alloc(testOptions().SubheapUserSize) // the whole user region
	if err != nil {
		t.Fatal(err)
	}
	overflow := make([]byte, 8192) // spills past the user region
	faulted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*mpk.ProtectionError); !ok {
					panic(r)
				}
				faulted = true
			}
		}()
		_ = th.Write(p, testOptions().SubheapUserSize-4096, overflow)
	}()
	if !faulted {
		t.Fatal("overflow into neighbouring metadata did not fault")
	}
}

func TestUserDataWritableWithoutFault(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Write(p, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
}

func TestExhaustionAndReuse(t *testing.T) {
	h := newTestHeap(t)
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	// Fill sub-heap 0 with 64 KiB blocks.
	var ptrs []NVMPtr
	for {
		p, err := th.Alloc(64 << 10)
		if errors.Is(err, ErrOutOfMemory) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	want := int(testOptions().SubheapUserSize / (64 << 10))
	if len(ptrs) != want {
		t.Fatalf("allocated %d blocks, want %d", len(ptrs), want)
	}
	// Free one; exactly one more allocation must succeed.
	if err := th.Free(ptrs[len(ptrs)/2]); err != nil {
		t.Fatal(err)
	}
	p, err := th.Alloc(64 << 10)
	if err != nil {
		t.Fatalf("alloc after free: %v", err)
	}
	if _, err := th.Alloc(64 << 10); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected OOM, got %v", err)
	}
	_ = p
	auditHeap(t, h)
}

func TestDefragmentationMergesBuddies(t *testing.T) {
	// A sub-heap small enough to fill completely with 64 B blocks: after
	// freeing them all, a whole-region allocation can only be satisfied by
	// merging buddies back up (§5.4 case 1).
	h, err := Create(Options{
		Subheaps:        1,
		SubheapUserSize: 64 << 10,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		HeapID:          3,
		CrashTracking:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	var ptrs []NVMPtr
	for i := 0; i < 1024; i++ {
		p, err := th.Alloc(64)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		ptrs = append(ptrs, p)
	}
	if _, err := th.Alloc(64); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("heap should be full, got %v", err)
	}
	for _, p := range ptrs {
		if err := th.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	p, err := th.Alloc(64 << 10)
	if err != nil {
		t.Fatalf("whole-region alloc after frees: %v", err)
	}
	if h.Stats().DefragMerges == 0 {
		t.Fatal("no defragmentation merges recorded")
	}
	if err := th.Free(p); err != nil {
		t.Fatal(err)
	}
	auditHeap(t, h)
}

func TestFreeDelaysReuse(t *testing.T) {
	h := newTestHeap(t)
	th, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	// Two blocks of the same class on the free list: freeing a third and
	// allocating again must not hand back the just-freed block (tail
	// insertion, §5.5).
	a, _ := th.Alloc(64)
	b, _ := th.Alloc(64)
	c, _ := th.Alloc(64)
	if err := th.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(c); err != nil {
		t.Fatal(err)
	}
	got, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// The class-0 list held split remainders before a/b/c were appended, so
	// the only guarantee is that the most recently freed block is not the
	// one handed back.
	if got == c {
		t.Fatal("just-freed block reused immediately (tail insertion violated)")
	}
	_, _ = a, b
}

func TestRootPointer(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	if root, err := h.Root(); err != nil || !root.IsNull() {
		t.Fatalf("fresh root = %v, %v", root, err)
	}
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(p); err != nil {
		t.Fatal(err)
	}
	got, err := h.Root()
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("root = %v, want %v", got, p)
	}
	// Foreign pointers are rejected.
	if err := h.SetRoot(makePtr(12345, 0, 0)); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("foreign root: %v", err)
	}
}

func TestRootSurvivesRestart(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	p, err := th.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Persist(p, 0, []byte("root data")); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(p); err != nil {
		t.Fatal(err)
	}
	th.Close()

	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root != p {
		t.Fatalf("root after restart = %v, want %v", root, p)
	}
	th2 := newThread(t, h2)
	defer th2.Close()
	got := make([]byte, 9)
	if err := th2.Read(root, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "root data" {
		t.Fatalf("root data = %q", got)
	}
}

func TestAllocationsSurviveRestart(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	var ptrs []NVMPtr
	for i := 0; i < 50; i++ {
		p, err := th.Alloc(uint64(64 << (i % 4)))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	th.Close()

	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	th2 := newThread(t, h2)
	defer th2.Close()
	// Every block is still allocated: freeing succeeds exactly once.
	for _, p := range ptrs {
		if err := th2.Free(p); err != nil {
			t.Fatalf("free after restart: %v", err)
		}
	}
	auditHeap(t, h2)
}

func TestTxAllocCommitted(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	p1, err := th.TxAlloc(64, false)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := th.TxAlloc(128, true) // commit
	if err != nil {
		t.Fatal(err)
	}
	th.Close()
	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	th2 := newThread(t, h2)
	defer th2.Close()
	// Committed: both blocks survive.
	if err := th2.Free(p1); err != nil {
		t.Fatalf("p1 lost: %v", err)
	}
	if err := th2.Free(p2); err != nil {
		t.Fatalf("p2 lost: %v", err)
	}
	if h2.Stats().RecoveredBlocks != 0 {
		t.Fatalf("recovery freed %d blocks of a committed tx", h2.Stats().RecoveredBlocks)
	}
}

func TestTxAllocUncommittedRolledBack(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	p1, err := th.TxAlloc(64, false)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := th.TxAlloc(128, false) // never committed
	if err != nil {
		t.Fatal(err)
	}
	// Crash before is_end: recovery must free both (no leak, §4.5).
	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	if got := h2.Stats().RecoveredBlocks; got != 2 {
		t.Fatalf("recovered %d blocks, want 2", got)
	}
	th2 := newThread(t, h2)
	defer th2.Close()
	// The blocks are free again: freeing them reports double free.
	if err := th2.Free(p1); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("p1 free after rollback: %v", err)
	}
	if err := th2.Free(p2); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("p2 free after rollback: %v", err)
	}
	auditHeap(t, h2)
}

func TestRecoveryIsIdempotent(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	if _, err := th.TxAlloc(64, false); err != nil {
		t.Fatal(err)
	}
	// First recovery.
	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	// Crash immediately and recover again: replays must be no-ops.
	h3 := reload(t, h2, nvm.CrashPolicy{Mode: nvm.EvictNone})
	if got := h3.Stats().RecoveredBlocks + h3.Stats().RecoveredNoops; got != 0 {
		t.Fatalf("second recovery did work: %d", got)
	}
	auditHeap(t, h3)
}

func TestConcurrentAllocFree(t *testing.T) {
	h, err := Create(Options{
		Subheaps:        4,
		SubheapUserSize: 1 << 20,
		SubheapMetaSize: 256 << 10,
		UndoLogSize:     64 << 10,
		HeapID:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th, err := h.Thread()
			if err != nil {
				errs <- err
				return
			}
			defer th.Close()
			rng := rand.New(rand.NewSource(int64(w)))
			var live []NVMPtr
			for i := 0; i < 500; i++ {
				if len(live) > 8 || (len(live) > 0 && rng.Intn(2) == 0) {
					k := rng.Intn(len(live))
					if err := th.Free(live[k]); err != nil {
						errs <- err
						return
					}
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				p, err := th.Alloc(uint64(rng.Intn(2048) + 1))
				if errors.Is(err, ErrOutOfMemory) {
					continue
				}
				if err != nil {
					errs <- err
					return
				}
				live = append(live, p)
			}
			for _, p := range live {
				if err := th.Free(p); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	auditHeap(t, h)
}

func TestCrossThreadFree(t *testing.T) {
	h := newTestHeap(t)
	t0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	t1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	p, err := t0.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Thread 1 frees a block owned by sub-heap 0.
	if err := t1.Free(p); err != nil {
		t.Fatalf("cross-thread free: %v", err)
	}
	auditHeap(t, h)
}

func TestThreadLaneExhaustionAndReuse(t *testing.T) {
	h := newTestHeap(t)
	var threads []*Thread
	for i := 0; i < testOptions().MaxThreads; i++ {
		th, err := h.Thread()
		if err != nil {
			t.Fatalf("thread %d: %v", i, err)
		}
		threads = append(threads, th)
	}
	if _, err := h.Thread(); !errors.Is(err, ErrNoThreads) {
		t.Fatalf("expected ErrNoThreads, got %v", err)
	}
	threads[0].Close()
	if _, err := h.Thread(); err != nil {
		t.Fatalf("thread after close: %v", err)
	}
	for _, th := range threads[1:] {
		th.Close()
	}
}

func TestClosedHeapAndThread(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	th.Close()
	if _, err := th.Alloc(64); !errors.Is(err, ErrClosed) {
		t.Fatalf("alloc on closed thread: %v", err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Thread(); !errors.Is(err, ErrClosed) {
		t.Fatalf("thread on closed heap: %v", err)
	}
}

func TestSaveLoadFile(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	p, err := th.Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Persist(p, 0, []byte("durable!")); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(p); err != nil {
		t.Fatal(err)
	}
	th.Close()
	path := t.TempDir() + "/heap.img"
	if err := h.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	dev, err := nvm.LoadFile(path, nvm.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Load(dev, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if h2.HeapID() != h.HeapID() {
		t.Fatalf("heap id changed: %#x -> %#x", h.HeapID(), h2.HeapID())
	}
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	th2 := newThread(t, h2)
	defer th2.Close()
	got := make([]byte, 8)
	if err := th2.Read(root, 0, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "durable!" {
		t.Fatalf("data = %q", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dev, err := nvm.NewDevice(nvm.Options{Capacity: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dev, Options{}); !errors.Is(err, ErrCorruptHeap) {
		t.Fatalf("err = %v, want ErrCorruptHeap", err)
	}
}

func TestPtrCodecQuick(t *testing.T) {
	f := func(heapID uint64, sub uint16, off uint64) bool {
		off &= offsetMask
		p := makePtr(heapID, sub, off)
		return p.HeapID == heapID && p.Subheap() == sub && p.Offset() == off &&
			ptrFromWords(heapID, p.Loc()) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPtrString(t *testing.T) {
	if s := (NVMPtr{}).String(); s != "nvmptr(null)" {
		t.Fatalf("null string = %q", s)
	}
	p := makePtr(0xA, 3, 0x1000)
	if p.String() == "" || p.IsNull() {
		t.Fatal("non-null pointer misbehaves")
	}
}

func TestPtrTranslation(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := h.RawOffset(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := h.PtrAt(dev)
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("PtrAt(RawOffset(p)) = %v, want %v", back, p)
	}
	// Metadata offsets refuse to translate.
	if _, err := h.PtrAt(h.lay.subheapBase(0) + 64); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("metadata PtrAt: %v", err)
	}
	if _, err := h.RawOffset(NVMPtr{}); !errors.Is(err, ErrBadPointer) {
		t.Fatalf("null RawOffset: %v", err)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Subheaps: -1},
		{SubheapUserSize: 3 << 20},                        // not a power of two
		{SubheapUserSize: 1 << 10},                        // too small
		{UndoLogSize: 4 << 10, SubheapMetaSize: 64 << 10}, // undo too small
	}
	for i, opts := range bad {
		if _, err := Create(opts); err == nil {
			t.Errorf("options %d accepted: %+v", i, opts)
		}
	}
}

func TestStatsCounters(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	p, _ := th.Alloc(64)
	_ = th.Free(p)
	if _, err := th.TxAlloc(64, true); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Allocs != 1 || st.Frees != 1 || st.TxAllocs != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PermissionSwitches == 0 {
		t.Fatal("no permission switches recorded under MPK")
	}
}

func TestProtectNoneSkipsSwitches(t *testing.T) {
	opts := testOptions()
	opts.Protection = ProtectNone
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th.Close()
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if got := h.Stats().PermissionSwitches; got != 0 {
		t.Fatalf("switches = %d under ProtectNone", got)
	}
}

func TestTxAbandonDropsOpenTransaction(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	p, err := th.TxAlloc(64, false)
	if err != nil {
		t.Fatal(err)
	}
	// Abandon: the log is dropped WITHOUT freeing the allocation — it
	// models an application that decides to keep the blocks (equivalent to
	// an is_end commit of what was logged so far).
	if err := th.TxAbandon(); err != nil {
		t.Fatal(err)
	}
	th.Close()
	h2 := reload(t, h, nvm.CrashPolicy{Mode: nvm.EvictNone})
	if got := h2.Stats().RecoveredBlocks; got != 0 {
		t.Fatalf("recovery rolled back %d blocks of an abandoned (committed) log", got)
	}
	th2 := newThread(t, h2)
	defer th2.Close()
	if err := th2.Free(p); err != nil {
		t.Fatalf("block lost: %v", err)
	}
	if h2.Subheaps() != testOptions().Subheaps {
		t.Fatalf("subheaps = %d", h2.Subheaps())
	}
}
