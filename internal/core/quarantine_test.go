package core

import (
	"errors"
	"testing"

	"poseidon/internal/nvm"
)

// recordSlot finds the hash-table slot of the record indexing p's block —
// the bit-flip target for media-corruption tests.
func recordSlot(t *testing.T, h *Heap, p NVMPtr) uint64 {
	t.Helper()
	dev, err := h.RawOffset(p)
	if err != nil {
		t.Fatal(err)
	}
	s := h.subheaps[p.Subheap()]
	s.mu.Lock()
	h.grant(s.thread)
	slot, err := s.mgr.Lookup(s.win, dev)
	h.revoke(s.thread)
	s.mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	return slot
}

// TestBitFlipQuarantinesSubheap is the degrade-don't-die acceptance test:
// a seeded bit flip in sub-heap 0's metadata must be detected by the
// ScrubOnLoad audit, quarantine exactly that sub-heap, and leave Alloc/Free
// on the healthy sub-heap fully functional.
func TestBitFlipQuarantinesSubheap(t *testing.T) {
	opts := testOptions()
	opts.ScrubOnLoad = true
	h, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Touch both sub-heaps so both are formatted.
	th0, err := h.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := th0.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	th1, err := h.ThreadOn(1)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := th1.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	th0.Close()
	th1.Close()

	// Flip one bit in the size word of sub-heap 0's block record: 128
	// becomes 129, which is not a power-of-two class size. InjectBitFlip
	// corrupts both the volatile and persistent images, so the damage
	// survives the crash below — media corruption, not a dirty store.
	slot := recordSlot(t, h, p0)
	if err := h.Device().InjectBitFlip(slot+8, 0); err != nil {
		t.Fatal(err)
	}

	h2 := func() *Heap {
		if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
			t.Fatal(err)
		}
		_ = h.Close()
		h2, err := Load(h.Device(), opts)
		if err != nil {
			t.Fatalf("Load must degrade, not die: %v", err)
		}
		return h2
	}()

	// The corruption was detected at Load and sub-heap 0 quarantined.
	if !h2.subheaps[0].isQuarantined() {
		t.Fatal("sub-heap 0 not quarantined after metadata bit flip")
	}
	if h2.subheaps[1].isQuarantined() {
		t.Fatal("healthy sub-heap 1 was quarantined")
	}
	stats := h2.Stats()
	if stats.QuarantinedSubheaps != 1 {
		t.Fatalf("QuarantinedSubheaps = %d, want 1", stats.QuarantinedSubheaps)
	}
	if stats.QuarantinedBytes != testOptions().SubheapUserSize {
		t.Fatalf("QuarantinedBytes = %d, want %d", stats.QuarantinedBytes, testOptions().SubheapUserSize)
	}
	report, err := h2.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report.Quarantined != 1 {
		t.Fatalf("Check Quarantined = %d, want 1", report.Quarantined)
	}
	if !report.OK() {
		t.Fatalf("quarantine must absorb the problems, got: %v", report.Problems)
	}
	if report.Healthy() {
		t.Fatal("Healthy() must be false with quarantined capacity")
	}
	var sub0 SubheapReport
	for _, sr := range report.SubheapReports {
		if sr.ID == 0 {
			sub0 = sr
		}
	}
	if !sub0.Quarantined || sub0.QuarantineReason == "" {
		t.Fatalf("sub-heap 0 report: %+v", sub0)
	}

	// A thread pinned to the quarantined shard still allocates — redirected
	// to the healthy sub-heap.
	q, err := h2.ThreadOn(0)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	pa, err := q.Alloc(64)
	if err != nil {
		t.Fatalf("Alloc on quarantined shard must redirect: %v", err)
	}
	if pa.Subheap() != 1 {
		t.Fatalf("redirected alloc landed in sub-heap %d, want 1", pa.Subheap())
	}
	pt, err := q.TxAlloc(64, true)
	if err != nil {
		t.Fatalf("TxAlloc on quarantined shard must redirect: %v", err)
	}
	if pt.Subheap() != 1 {
		t.Fatalf("redirected tx alloc landed in sub-heap %d, want 1", pt.Subheap())
	}

	// Frees on the healthy sub-heap work; frees into the quarantined region
	// are rejected with the dedicated error.
	if err := q.Free(p1); err != nil {
		t.Fatalf("Free on healthy sub-heap: %v", err)
	}
	if err := q.Free(p0); !errors.Is(err, ErrSubheapQuarantined) {
		t.Fatalf("Free into quarantined sub-heap: %v, want ErrSubheapQuarantined", err)
	}
	if _, err := q.BlockSize(p0); !errors.Is(err, ErrSubheapQuarantined) {
		t.Fatalf("BlockSize on quarantined sub-heap: %v, want ErrSubheapQuarantined", err)
	}
}

// TestAllSubheapsQuarantined verifies the terminal case: with every
// sub-heap benched, allocations fail with ErrSubheapQuarantined rather
// than panicking or looping.
func TestAllSubheapsQuarantined(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	defer th.Close()
	if _, err := th.Alloc(64); err != nil {
		t.Fatal(err)
	}
	for _, s := range h.subheaps {
		s.quarantine("test")
	}
	if _, err := th.Alloc(64); !errors.Is(err, ErrSubheapQuarantined) {
		t.Fatalf("Alloc = %v, want ErrSubheapQuarantined", err)
	}
	if _, err := th.TxAlloc(64, true); !errors.Is(err, ErrSubheapQuarantined) {
		t.Fatalf("TxAlloc = %v, want ErrSubheapQuarantined", err)
	}
}

// TestLoadSurvivesTransientReadFaults exercises the bounded-retry path:
// transient read errors scoped to the superblock heap-ID word are armed for
// a couple of faults; Load must retry through them and count the retries.
func TestLoadSurvivesTransientReadFaults(t *testing.T) {
	h := newTestHeap(t)
	th := newThread(t, h)
	if _, err := th.Alloc(128); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()

	h.Device().ArmTransientFaults(nvm.TransientFaults{
		Off:       sbHeapIDOff,
		Len:       8,
		Reads:     true,
		MaxFaults: 2,
		Seed:      1,
	})
	h2, err := Load(h.Device(), testOptions())
	h.Device().DisarmTransientFaults()
	if err != nil {
		t.Fatalf("Load must survive transient faults: %v", err)
	}
	if got := h2.Stats().TransientRetries; got != 2 {
		t.Fatalf("TransientRetries = %d, want 2", got)
	}
	auditHeap(t, h2)
}

// TestLoadFailsWhenTransientFaultsPersist pins the bound: a fault that
// outlasts every retry surfaces as an error instead of hanging.
func TestLoadFailsWhenTransientFaultsPersist(t *testing.T) {
	h := newTestHeap(t)
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	_ = h.Close()

	h.Device().ArmTransientFaults(nvm.TransientFaults{
		Off:   sbHeapIDOff,
		Len:   8,
		Reads: true,
		Seed:  1,
	})
	defer h.Device().DisarmTransientFaults()
	if _, err := Load(h.Device(), testOptions()); !errors.Is(err, nvm.ErrTransient) {
		t.Fatalf("Load = %v, want ErrTransient", err)
	}
}
