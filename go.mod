module poseidon

go 1.24
