package poseidon

import (
	"fmt"
	"sync"
)

// Registry resolves persistent pointers to the heap they belong to. A
// process that opens several heaps (the paper's multi-pool model, §2.2)
// registers each one; NVMPtr.HeapID then names the pool exactly as the
// pool-id half of a 16-byte persistent pointer does in other NVMM
// allocators.
type Registry struct {
	mu    sync.RWMutex
	heaps map[uint64]*Heap
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{heaps: make(map[uint64]*Heap)}
}

// Add registers a heap. Registering two heaps with the same ID is an
// error (heap IDs are random 64-bit values at creation, so collisions
// indicate the same image opened twice).
func (r *Registry) Add(h *Heap) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	id := h.HeapID()
	if _, dup := r.heaps[id]; dup {
		return fmt.Errorf("poseidon: heap %#x already registered", id)
	}
	r.heaps[id] = h
	return nil
}

// Remove unregisters a heap.
func (r *Registry) Remove(h *Heap) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.heaps, h.HeapID())
}

// Resolve returns the registered heap a pointer belongs to.
func (r *Registry) Resolve(p NVMPtr) (*Heap, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h, ok := r.heaps[p.HeapID]
	return h, ok
}

// Len returns the number of registered heaps.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.heaps)
}
