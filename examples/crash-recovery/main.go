// crash-recovery: crashes a heap at the worst possible moments and shows
// Poseidon's recovery guarantees (§5.8): committed state survives, the
// interrupted metadata operation is rolled back by the undo log, and
// adversarial cacheline eviction cannot produce a torn heap.
package main

import (
	"errors"
	"fmt"
	"log"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func opts() core.Options {
	return core.Options{
		Subheaps:        1,
		SubheapUserSize: 4 << 20,
		SubheapMetaSize: 512 << 10,
		UndoLogSize:     64 << 10,
		HeapID:          0xC0FFEE,
		CrashTracking:   true, // enable the device's crash simulation
	}
}

func run() error {
	h, err := core.Create(opts())
	if err != nil {
		return err
	}
	t, err := h.Thread()
	if err != nil {
		return err
	}

	// Committed work: an allocated block holding durable data.
	keeper, err := t.Alloc(128)
	if err != nil {
		return err
	}
	if err := t.Persist(keeper, 0, []byte("committed before the crash")); err != nil {
		return err
	}
	if err := h.SetRoot(keeper); err != nil {
		return err
	}
	fmt.Printf("committed block %v\n", keeper)

	// Kill the device mid-allocation: after 5 more stores, every further
	// store fails — the machine is "dying" inside the allocator.
	h.Device().FailAfter(5)
	_, err = t.Alloc(256)
	fmt.Printf("allocation during the failure: %v\n", err)
	h.Device().DisarmFailpoint()

	// Power failure with adversarial cacheline eviction: any dirty line
	// may or may not have reached the media.
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: 99}); err != nil {
		return err
	}
	fmt.Println("power failed (random surviving cachelines); restarting…")

	// Restart: Load replays the undo logs and rolls back uncommitted
	// transactional allocations.
	h2, err := core.Load(h.Device(), opts())
	if err != nil {
		return err
	}
	t2, err := h2.Thread()
	if err != nil {
		return err
	}
	defer t2.Close()
	root, err := h2.Root()
	if err != nil {
		return err
	}
	buf := make([]byte, 26)
	if err := t2.Read(root, 0, buf); err != nil {
		return err
	}
	fmt.Printf("recovered root data: %q\n", buf)

	// Transactional allocation: crash before the commit -> rolled back.
	fmt.Println("\nopening a transaction of 3 allocations, crashing before commit…")
	var txPtrs []core.NVMPtr
	for i := 0; i < 3; i++ {
		p, err := t2.TxAlloc(512, false) // is_end stays false: never committed
		if err != nil {
			return err
		}
		txPtrs = append(txPtrs, p)
	}
	if _, err := h2.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		return err
	}
	h3, err := core.Load(h2.Device(), opts())
	if err != nil {
		return err
	}
	st := h3.Stats()
	fmt.Printf("recovery rolled back %d uncommitted allocations (no persistent leak)\n",
		st.RecoveredBlocks)
	t3, err := h3.Thread()
	if err != nil {
		return err
	}
	defer t3.Close()
	for _, p := range txPtrs {
		if err := t3.Free(p); !errors.Is(err, core.ErrDoubleFree) {
			return fmt.Errorf("block %v should have been rolled back, free said: %v", p, err)
		}
	}
	fmt.Println("all transaction blocks are back on the free lists")

	// And the committed data is still there.
	root3, err := h3.Root()
	if err != nil {
		return err
	}
	if err := t3.Read(root3, 0, buf); err != nil {
		return err
	}
	fmt.Printf("committed data after second crash: %q\n", buf)
	return nil
}
