// Quickstart: create (or reopen) a persistent heap, allocate a block,
// store durable data reachable from the root pointer, and read it back
// after a "restart". Run it twice to see persistence across processes:
//
//	go run ./examples/quickstart         # first run: creates heap.img
//	go run ./examples/quickstart         # second run: finds the old data
package main

import (
	"fmt"
	"log"

	"poseidon"
)

const heapPath = "heap.img"

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Open loads an existing image (replaying crash-recovery logs) or
	// creates a fresh heap if the file does not exist.
	h, err := poseidon.Open(heapPath, poseidon.Options{
		Subheaps:        2,
		SubheapUserSize: 8 << 20,
	})
	if err != nil {
		return err
	}
	defer h.Close()

	// Every goroutine allocates through its own Thread handle.
	t, err := h.Thread()
	if err != nil {
		return err
	}
	defer t.Close()

	root, err := h.Root()
	if err != nil {
		return err
	}
	if !root.IsNull() {
		// Second run: the previous process left data behind.
		var count [8]byte
		if err := t.Read(root, 0, count[:]); err != nil {
			return err
		}
		msg := make([]byte, 32)
		if err := t.Read(root, 8, msg); err != nil {
			return err
		}
		fmt.Printf("found existing root %v\n", root)
		fmt.Printf("stored message: %q\n", trim(msg))
		runs, err := t.ReadU64(root, 0)
		if err != nil {
			return err
		}
		runs++
		if err := t.WriteU64(root, 0, runs); err != nil {
			return err
		}
		if err := t.Flush(root, 0, 8); err != nil {
			return err
		}
		fmt.Printf("this heap has now been opened %d times\n", runs)
		return h.Save()
	}

	// First run: allocate a persistent block and anchor it at the root.
	p, err := t.Alloc(64)
	if err != nil {
		return err
	}
	if err := t.WriteU64(p, 0, 1); err != nil { // run counter
		return err
	}
	if err := t.Persist(p, 8, []byte("hello, persistent memory!")); err != nil {
		return err
	}
	if err := t.Flush(p, 0, 8); err != nil {
		return err
	}
	if err := h.SetRoot(p); err != nil {
		return err
	}
	fmt.Printf("created %s with root %v — run me again!\n", heapPath, p)
	return h.Save()
}

func trim(b []byte) string {
	for i, v := range b {
		if v == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
