// tasklist: a persistent to-do list built on the pstruct layer — run it
// repeatedly; each run adds a task, marks the oldest done, and shows the
// surviving state. It demonstrates application-level crash-safe structures
// (pstruct.List's pending-slot publication protocol) on top of the
// allocator's guarantees.
//
//	go run ./examples/tasklist "write the report"
//	go run ./examples/tasklist "review the PR"
//	go run ./examples/tasklist            # no argument: just list and pop
package main

import (
	"fmt"
	"log"
	"os"

	"poseidon"
	"poseidon/pstruct"
)

const heapPath = "tasks.img"

func main() {
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

func run(args []string) error {
	h, err := poseidon.Open(heapPath, poseidon.Options{
		Subheaps:        1,
		SubheapUserSize: 4 << 20,
	})
	if err != nil {
		return err
	}
	defer h.Close()
	t, err := h.Thread()
	if err != nil {
		return err
	}
	defer t.Close()

	// Find or create the list at the heap root.
	var list *pstruct.List
	root, err := h.Root()
	if err != nil {
		return err
	}
	if root.IsNull() {
		list, err = pstruct.NewList(t)
		if err != nil {
			return err
		}
		if err := h.SetRoot(list.Anchor()); err != nil {
			return err
		}
		fmt.Println("created a fresh task list")
	} else {
		// OpenList also completes/rolls back any push a crash interrupted.
		list, err = pstruct.OpenList(t, root)
		if err != nil {
			return err
		}
	}

	if len(args) > 0 {
		if err := list.PushFront(t, []byte(args[0])); err != nil {
			return err
		}
		fmt.Printf("added task: %q\n", args[0])
	} else if done, ok, err := list.PopFront(t); err != nil {
		return err
	} else if ok {
		fmt.Printf("completed task: %q\n", done)
	}

	n, err := list.Len(t)
	if err != nil {
		return err
	}
	fmt.Printf("%d task(s) pending:\n", n)
	i := 0
	err = list.Walk(t, func(data []byte) bool {
		i++
		fmt.Printf("  %d. %s\n", i, data)
		return true
	})
	if err != nil {
		return err
	}
	return h.Save()
}
