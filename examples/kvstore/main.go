// kvstore: a persistent key-value store built from the repository's own
// building blocks — the FAST-FAIR persistent B+-tree indexing values
// allocated from a Poseidon heap. It loads a batch of entries, reads a few
// back, deletes by overwrite, and shows a range scan — the shape of the
// paper's YCSB substrate (Figure 9).
package main

import (
	"fmt"
	"log"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/fastfair"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	a, err := alloc.NewPoseidon(core.Options{
		Subheaps:        2,
		SubheapUserSize: 16 << 20,
		// Small-object-heavy workload: size the memory-block hash table
		// for ~64 B blocks (the default assumes ~1 KiB averages).
		SubheapMetaSize: 4 << 20,
	})
	if err != nil {
		return err
	}
	defer a.Close()
	h, err := a.Thread(0)
	if err != nil {
		return err
	}
	defer h.Close()

	tree, err := fastfair.New(h)
	if err != nil {
		return err
	}

	// put stores value bytes in their own persistent block and indexes it.
	put := func(key uint64, value string) error {
		blk, err := h.Alloc(uint64(len(value)) + 8)
		if err != nil {
			return err
		}
		if err := h.WriteU64(blk, 0, uint64(len(value))); err != nil {
			return err
		}
		if err := h.Write(blk, 8, []byte(value)); err != nil {
			return err
		}
		if err := h.Persist(blk, 0, uint64(len(value))+8); err != nil {
			return err
		}
		old, had, err := tree.Update(h, key, uint64(blk))
		if err != nil {
			return err
		}
		if had {
			return h.Free(alloc.Ptr(old)) // replaced: old value block released
		}
		return tree.Insert(h, key, uint64(blk))
	}

	get := func(key uint64) (string, bool, error) {
		v, ok, err := tree.Search(h, key)
		if err != nil || !ok {
			return "", false, err
		}
		n, err := h.ReadU64(alloc.Ptr(v), 0)
		if err != nil {
			return "", false, err
		}
		buf := make([]byte, n)
		if err := h.Read(alloc.Ptr(v), 8, buf); err != nil {
			return "", false, err
		}
		return string(buf), true, nil
	}

	fmt.Println("loading 10,000 entries…")
	for i := uint64(1); i <= 10000; i++ {
		if err := put(i, fmt.Sprintf("value-%d", i)); err != nil {
			return fmt.Errorf("put %d: %w", i, err)
		}
	}

	for _, k := range []uint64{1, 4242, 10000} {
		v, ok, err := get(k)
		if err != nil {
			return err
		}
		fmt.Printf("get(%d) = %q (found=%v)\n", k, v, ok)
	}

	fmt.Println("overwriting key 4242…")
	if err := put(4242, "replacement"); err != nil {
		return err
	}
	v, _, err := get(4242)
	if err != nil {
		return err
	}
	fmt.Printf("get(4242) = %q\n", v)

	fmt.Println("range scan [100, 106):")
	err = tree.Scan(h, 100, 106, func(key, val uint64) bool {
		n, _ := h.ReadU64(alloc.Ptr(val), 0)
		buf := make([]byte, n)
		_ = h.Read(alloc.Ptr(val), 8, buf)
		fmt.Printf("  %d -> %s\n", key, buf)
		return true
	})
	if err != nil {
		return err
	}

	st := a.Heap().Stats()
	fmt.Printf("allocator: %d allocations, %d frees, %d defrag merges\n",
		st.Allocs, st.Frees, st.DefragMerges)
	return nil
}
