// txalloc: transactional allocation (poseidon_tx_alloc, §5.3). A persistent
// linked list is built inside a transaction — either every node survives a
// crash, or none do, so the list can never lose its tail to a power cut.
package main

import (
	"fmt"
	"log"

	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func opts() core.Options {
	return core.Options{
		Subheaps:        1,
		SubheapUserSize: 4 << 20,
		SubheapMetaSize: 512 << 10,
		UndoLogSize:     64 << 10,
		HeapID:          0xBEEF,
		CrashTracking:   true,
	}
}

// node layout: [0..8) next pointer location word, [8..16) payload.
func buildList(t *core.Thread, values []uint64, commit bool) (core.NVMPtr, error) {
	var head, prev core.NVMPtr
	for i, v := range values {
		isEnd := commit && i == len(values)-1
		n, err := t.TxAlloc(16, isEnd)
		if err != nil {
			return core.NVMPtr{}, err
		}
		if err := t.WriteU64(n, 8, v); err != nil {
			return core.NVMPtr{}, err
		}
		if err := t.Flush(n, 8, 8); err != nil {
			return core.NVMPtr{}, err
		}
		if prev.IsNull() {
			head = n
		} else {
			if err := t.WriteU64(prev, 0, n.Loc()); err != nil {
				return core.NVMPtr{}, err
			}
			if err := t.Flush(prev, 0, 8); err != nil {
				return core.NVMPtr{}, err
			}
		}
		prev = n
	}
	return head, nil
}

func printList(h *core.Heap, t *core.Thread, head core.NVMPtr) error {
	fmt.Print("list:")
	for p := head; !p.IsNull(); {
		v, err := t.ReadU64(p, 8)
		if err != nil {
			return err
		}
		fmt.Printf(" %d", v)
		loc, err := t.ReadU64(p, 0)
		if err != nil {
			return err
		}
		if loc == 0 {
			break
		}
		p = core.PtrFromLoc(h.HeapID(), loc)
	}
	fmt.Println()
	return nil
}

func run() error {
	h, err := core.Create(opts())
	if err != nil {
		return err
	}
	t, err := h.Thread()
	if err != nil {
		return err
	}

	// A committed transaction: the whole list becomes durable atomically.
	head, err := buildList(t, []uint64{10, 20, 30, 40}, true)
	if err != nil {
		return err
	}
	if err := h.SetRoot(head); err != nil {
		return err
	}
	fmt.Println("committed a 4-node list inside one transaction")
	if err := printList(h, t, head); err != nil {
		return err
	}

	// An uncommitted transaction interrupted by a crash: recovery frees
	// every allocation the micro log recorded — no persistent leak.
	if _, err := buildList(t, []uint64{77, 88, 99}, false); err != nil {
		return err
	}
	fmt.Println("\nbuilt a 3-node list WITHOUT committing, then the power failed…")
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		return err
	}
	h2, err := core.Load(h.Device(), opts())
	if err != nil {
		return err
	}
	st := h2.Stats()
	fmt.Printf("recovery freed %d uncommitted allocations\n", st.RecoveredBlocks)

	t2, err := h2.Thread()
	if err != nil {
		return err
	}
	defer t2.Close()
	root, err := h2.Root()
	if err != nil {
		return err
	}
	fmt.Println("the committed list is intact:")
	return printList(h2, t2, root)
}
