package poseidon

// Recovery-time benchmarks (§5.1 vs §2.2): Poseidon's load replays only
// the (truncated) logs and micro-log lanes — constant in the number of
// live objects — while Makalu's mark-and-sweep recovery walks the whole
// heap. The benchmark loads heaps with growing object counts and measures
// one restart.
import (
	"fmt"
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/makalu"
	"poseidon/internal/nvm"
)

// BenchmarkRecoveryPoseidonLoad sweeps sub-heap count x recovery
// parallelism. The per-iteration work is the load-time scan and the
// ScrubOnLoad audit — per-sub-heap independent and identical every
// iteration (log replay is idempotent, the audit is read-mostly) — so the
// parallelism axis isolates the fan-out's speedup: at 32 sub-heaps the
// 8-way pool should approach 8x on an unloaded 8-core machine, and par=1
// is exactly the legacy serial path. On a single-core runner the two
// columns collapse (GOMAXPROCS bounds real concurrency), which is itself
// the honest result.
func BenchmarkRecoveryPoseidonLoad(b *testing.B) {
	const objectsPerSubheap = 2000
	for _, subheaps := range []int{2, 8, 32} {
		for _, par := range []int{1, 8} {
			b.Run(fmt.Sprintf("subheaps=%d/par=%d", subheaps, par), func(b *testing.B) {
				opts := core.Options{
					Subheaps:            subheaps,
					SubheapUserSize:     4 << 20,
					SubheapMetaSize:     1 << 20,
					MaxThreads:          64,
					CrashTracking:       true,
					ScrubOnLoad:         true,
					RecoveryParallelism: par,
				}
				h, err := core.Create(opts)
				if err != nil {
					b.Fatal(err)
				}
				for w := 0; w < subheaps; w++ {
					th, err := h.ThreadOn(w)
					if err != nil {
						b.Fatal(err)
					}
					for i := 0; i < objectsPerSubheap; i++ {
						if _, err := th.Alloc(256); err != nil {
							b.Fatal(err)
						}
					}
					th.Close()
				}
				dev := h.Device()
				// Crash once (the crash *simulation* copies every touched
				// chunk and would otherwise dominate the measurement); the
				// timed section is the restart path itself — §5.1's log scan
				// plus the full-audit fan-out.
				if _, err := dev.Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := core.Load(dev, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkRecoveryMakaluGC(b *testing.B) {
	for _, objects := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("objects=%d", objects), func(b *testing.B) {
			h, err := makalu.New(makalu.Options{Capacity: 256 << 20})
			if err != nil {
				b.Fatal(err)
			}
			th, err := h.Thread(0)
			if err != nil {
				b.Fatal(err)
			}
			defer th.Close()
			// A linked chain so everything is reachable from one root.
			var root, prev alloc.Ptr
			for i := 0; i < objects; i++ {
				p, err := th.Alloc(64)
				if err != nil {
					b.Fatal(err)
				}
				if prev == 0 {
					root = p
				} else {
					if err := th.WriteU64(prev, 0, uint64(p)); err != nil {
						b.Fatal(err)
					}
				}
				prev = p
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				freed, err := h.GC([]alloc.Ptr{root})
				if err != nil {
					b.Fatal(err)
				}
				if freed != 0 {
					b.Fatalf("GC freed %d reachable objects", freed)
				}
			}
		})
	}
}
