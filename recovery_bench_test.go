package poseidon

// Recovery-time benchmarks (§5.1 vs §2.2): Poseidon's load replays only
// the (truncated) logs and micro-log lanes — constant in the number of
// live objects — while Makalu's mark-and-sweep recovery walks the whole
// heap. The benchmark loads heaps with growing object counts and measures
// one restart.
import (
	"fmt"
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/core"
	"poseidon/internal/makalu"
	"poseidon/internal/nvm"
)

func BenchmarkRecoveryPoseidonLoad(b *testing.B) {
	for _, objects := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("objects=%d", objects), func(b *testing.B) {
			opts := core.Options{
				Subheaps:        2,
				SubheapUserSize: 64 << 20,
				SubheapMetaSize: 16 << 20,
				CrashTracking:   true,
			}
			h, err := core.Create(opts)
			if err != nil {
				b.Fatal(err)
			}
			th, err := h.Thread()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < objects; i++ {
				if _, err := th.Alloc(256); err != nil {
					b.Fatal(err)
				}
			}
			th.Close()
			dev := h.Device()
			// Crash once (the crash *simulation* copies every touched
			// chunk and would otherwise dominate the measurement); the
			// timed section is the restart path itself — §5.1's log scan,
			// which must not depend on the live-object count.
			if _, err := dev.Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Load(dev, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRecoveryMakaluGC(b *testing.B) {
	for _, objects := range []int{1000, 10000, 50000} {
		b.Run(fmt.Sprintf("objects=%d", objects), func(b *testing.B) {
			h, err := makalu.New(makalu.Options{Capacity: 256 << 20})
			if err != nil {
				b.Fatal(err)
			}
			th, err := h.Thread(0)
			if err != nil {
				b.Fatal(err)
			}
			defer th.Close()
			// A linked chain so everything is reachable from one root.
			var root, prev alloc.Ptr
			for i := 0; i < objects; i++ {
				p, err := th.Alloc(64)
				if err != nil {
					b.Fatal(err)
				}
				if prev == 0 {
					root = p
				} else {
					if err := th.WriteU64(prev, 0, uint64(p)); err != nil {
						b.Fatal(err)
					}
				}
				prev = p
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				freed, err := h.GC([]alloc.Ptr{root})
				if err != nil {
					b.Fatal(err)
				}
				if freed != 0 {
					b.Fatalf("GC freed %d reachable objects", freed)
				}
			}
		})
	}
}
