package pstruct_test

import (
	"fmt"
	"log"

	"poseidon"
	"poseidon/pstruct"
)

// Example builds a persistent list and map in one heap: the list anchored
// at the heap root, the map holding keyed values — the two structures an
// application typically starts from.
func Example() {
	h, err := poseidon.Create(poseidon.Options{
		Subheaps:        1,
		SubheapUserSize: 8 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	t, err := h.Thread()
	if err != nil {
		log.Fatal(err)
	}
	defer t.Close()

	list, err := pstruct.NewList(t)
	if err != nil {
		log.Fatal(err)
	}
	if err := h.SetRoot(list.Anchor()); err != nil {
		log.Fatal(err)
	}
	for _, item := range []string{"first", "second"} {
		if err := list.PushFront(t, []byte(item)); err != nil {
			log.Fatal(err)
		}
	}
	n, err := list.Len(t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("list holds", n, "items")

	m, err := pstruct.NewMap(t)
	if err != nil {
		log.Fatal(err)
	}
	if err := m.Put(t, 7, []byte("lucky")); err != nil {
		log.Fatal(err)
	}
	v, err := m.Get(t, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("map[7] =", string(v))
	// Output:
	// list holds 2 items
	// map[7] = lucky
}
