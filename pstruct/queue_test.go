package pstruct

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"poseidon"
	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func elem(v uint64) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b, v)
	binary.LittleEndian.PutUint64(b[8:], ^v)
	return b
}

func TestQueueFIFOOrder(t *testing.T) {
	_, th := newHeapThread(t)
	defer th.Close()
	q, err := NewQueue(th, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Spans several segments: perSeg = (4096-16)/16 = 255.
	const n = 1000
	for i := uint64(0); i < n; i++ {
		if err := q.Enqueue(th, elem(i)); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if got, _ := q.Len(th); got != n {
		t.Fatalf("len = %d", got)
	}
	for i := uint64(0); i < n; i++ {
		out, ok, err := q.Dequeue(th)
		if err != nil || !ok {
			t.Fatalf("dequeue %d: ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(out, elem(i)) {
			t.Fatalf("dequeue %d out of order", i)
		}
	}
	if _, ok, _ := q.Dequeue(th); ok {
		t.Fatal("dequeue from empty queue")
	}
	if got, _ := q.Len(th); got != 0 {
		t.Fatalf("len after drain = %d", got)
	}
}

func TestQueueInterleavedUse(t *testing.T) {
	_, th := newHeapThread(t)
	defer th.Close()
	q, err := NewQueue(th, 16)
	if err != nil {
		t.Fatal(err)
	}
	next, expect := uint64(0), uint64(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 37; i++ {
			if err := q.Enqueue(th, elem(next)); err != nil {
				t.Fatal(err)
			}
			next++
		}
		for i := 0; i < 23; i++ {
			out, ok, err := q.Dequeue(th)
			if err != nil || !ok {
				t.Fatal(err)
			}
			if !bytes.Equal(out, elem(expect)) {
				t.Fatalf("expected element %d", expect)
			}
			expect++
		}
	}
	want := next - expect
	if got, _ := q.Len(th); got != want {
		t.Fatalf("len = %d, want %d", got, want)
	}
}

func TestQueueValidation(t *testing.T) {
	_, th := newHeapThread(t)
	defer th.Close()
	if _, err := NewQueue(th, 0); !errors.Is(err, ErrBadElemSize) {
		t.Fatalf("zero elem size: %v", err)
	}
	q, err := NewQueue(th, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(th, make([]byte, 8)); !errors.Is(err, ErrWrongElemSize) {
		t.Fatalf("size mismatch: %v", err)
	}
}

func TestQueueSurvivesRestart(t *testing.T) {
	h, th := newHeapThread(t)
	q, err := NewQueue(th, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ { // crosses a segment boundary
		if err := q.Enqueue(th, elem(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.SetRoot(q.Anchor()); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := facade(t, ch)
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := OpenQueue(th2, root)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := q2.Len(th2); n != 300 {
		t.Fatalf("len after restart = %d", n)
	}
	for i := uint64(0); i < 300; i++ {
		out, ok, err := q2.Dequeue(th2)
		if err != nil || !ok {
			t.Fatalf("dequeue %d after restart: %v", i, err)
		}
		if !bytes.Equal(out, elem(i)) {
			t.Fatalf("order broken at %d after restart", i)
		}
	}
}

// Crash with the pending segment written but not linked: recovery frees
// the orphan; the queue keeps working.
func TestQueueRecoverUnlinkedSegment(t *testing.T) {
	h, th := newHeapThread(t)
	q, err := NewQueue(th, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Enqueue(th, elem(1)); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(q.Anchor()); err != nil {
		t.Fatal(err)
	}
	orphan, err := q.newSegment(th)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(q.Anchor(), qOffPending, orphan.Loc()+1); err != nil {
		t.Fatal(err)
	}
	if err := th.Flush(q.Anchor(), qOffPending, 8); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := facade(t, ch)
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := OpenQueue(th2, root)
	if err != nil {
		t.Fatal(err)
	}
	// The orphan was freed by queue recovery.
	if err := th2.Free(orphan); !errors.Is(err, poseidon.ErrDoubleFree) {
		t.Fatalf("orphan not reclaimed: %v", err)
	}
	out, ok, err := q2.Dequeue(th2)
	if err != nil || !ok || !bytes.Equal(out, elem(1)) {
		t.Fatalf("element lost: %v %v %v", out, ok, err)
	}
}

// Crash with the segment linked but the anchor not advanced: recovery
// completes the advance.
func TestQueueRecoverLinkedSegment(t *testing.T) {
	h, th := newHeapThread(t)
	q, err := NewQueue(th, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(q.Anchor()); err != nil {
		t.Fatal(err)
	}
	// Fill exactly one segment so the next enqueue needs a new one.
	for i := uint64(0); i < q.perSeg; i++ {
		if err := q.Enqueue(th, elem(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Hand-craft the torn grow: segment allocated, pending set, linked,
	// anchor NOT advanced.
	seg, err := q.newSegment(th)
	if err != nil {
		t.Fatal(err)
	}
	tailSeg, err := th.ReadU64(q.Anchor(), qOffTailSeg)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(q.Anchor(), qOffPending, seg.Loc()+1); err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(q.ptr(tailSeg), 0, seg.Loc()+1); err != nil {
		t.Fatal(err)
	}
	if err := th.Flush(q.ptr(tailSeg), 0, 8); err != nil {
		t.Fatal(err)
	}
	if err := th.Flush(q.Anchor(), 0, 64); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := facade(t, ch)
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := OpenQueue(th2, root)
	if err != nil {
		t.Fatal(err)
	}
	// The advance completed: enqueue lands in the new segment.
	if err := q2.Enqueue(th2, elem(999)); err != nil {
		t.Fatal(err)
	}
	tailSeg2, err := th2.ReadU64(q2.Anchor(), qOffTailSeg)
	if err != nil {
		t.Fatal(err)
	}
	if tailSeg2 != seg.Loc()+1 {
		t.Fatalf("tail segment = %#x, want the linked one %#x", tailSeg2, seg.Loc()+1)
	}
	// FIFO order intact across the boundary.
	out, ok, err := q2.Dequeue(th2)
	if err != nil || !ok || !bytes.Equal(out, elem(0)) {
		t.Fatalf("head element wrong after recovery: %v %v %v", out, ok, err)
	}
}
