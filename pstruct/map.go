package pstruct

import (
	"errors"

	"poseidon"
	"poseidon/internal/alloc"
	"poseidon/internal/fastfair"
)

// Map is a persistent ordered map from uint64 keys to byte values, backed
// by the FAST-FAIR B+-tree with values in their own persistent blocks.
//
// Concurrency: safe for concurrent use with one Thread per goroutine
// (index operations are latched internally; value blocks are published by
// an atomic 8-byte swap).
//
// Crash-wise, the index itself is rebuilt-none/logged-none in this version
// (the tree nodes persist, but an insert interrupted mid-split may need a
// fresh Load of the heap and, in the worst case, leaks a node — use
// poseidon-fsck to quantify). Value replacement is failure-atomic.
type Map struct {
	heapID uint64
	tree   *fastfair.Tree
}

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("pstruct: key not found")

// mapHandle adapts a facade Thread to the internal allocator Handle the
// tree operates on.
type mapHandle struct {
	t      *poseidon.Thread
	heapID uint64
}

var _ alloc.Handle = mapHandle{}

func (h mapHandle) decode(p alloc.Ptr) poseidon.NVMPtr {
	return poseidon.PtrFromLoc(h.heapID, uint64(p)-1)
}

func (h mapHandle) Alloc(size uint64) (alloc.Ptr, error) {
	p, err := h.t.Alloc(size)
	if err != nil {
		return 0, err
	}
	return alloc.Ptr(p.Loc() + 1), nil
}

func (h mapHandle) Free(p alloc.Ptr) error { return h.t.Free(h.decode(p)) }

func (h mapHandle) Write(p alloc.Ptr, off uint64, b []byte) error {
	return h.t.Write(h.decode(p), off, b)
}

func (h mapHandle) Read(p alloc.Ptr, off uint64, b []byte) error {
	return h.t.Read(h.decode(p), off, b)
}

func (h mapHandle) WriteU64(p alloc.Ptr, off uint64, v uint64) error {
	return h.t.WriteU64(h.decode(p), off, v)
}

func (h mapHandle) ReadU64(p alloc.Ptr, off uint64) (uint64, error) {
	return h.t.ReadU64(h.decode(p), off)
}

func (h mapHandle) Persist(p alloc.Ptr, off, n uint64) error {
	return h.t.Flush(h.decode(p), off, n)
}

func (h mapHandle) Close() {}

func (m *Map) handle(t *poseidon.Thread) mapHandle {
	return mapHandle{t: t, heapID: m.heapID}
}

// NewMap creates an empty persistent map.
func NewMap(t *poseidon.Thread) (*Map, error) {
	m := &Map{heapID: t.Heap().HeapID()}
	tree, err := fastfair.New(m.handle(t))
	if err != nil {
		return nil, err
	}
	m.tree = tree
	return m, nil
}

// Value block layout: +0 length, +8… bytes.
const valueHeader = 8

// Put stores value under key, replacing any previous value
// failure-atomically (the new block persists fully before the 8-byte
// index swap; the old block frees after).
func (m *Map) Put(t *poseidon.Thread, key uint64, value []byte) error {
	h := m.handle(t)
	blk, err := t.Alloc(valueHeader + uint64(len(value)))
	if err != nil {
		return err
	}
	if err := t.WriteU64(blk, 0, uint64(len(value))); err != nil {
		return err
	}
	if err := t.Write(blk, valueHeader, value); err != nil {
		return err
	}
	if err := t.Flush(blk, 0, valueHeader+uint64(len(value))); err != nil {
		return err
	}
	loc1 := blk.Loc() + 1
	old, had, err := m.tree.Update(h, key, loc1)
	if err != nil {
		return err
	}
	if had {
		if old != 0 {
			return t.Free(poseidon.PtrFromLoc(m.heapID, old-1))
		}
		return nil
	}
	return m.tree.Insert(h, key, loc1)
}

// Get returns the value under key.
func (m *Map) Get(t *poseidon.Thread, key uint64) ([]byte, error) {
	h := m.handle(t)
	loc1, ok, err := m.tree.Search(h, key)
	if err != nil {
		return nil, err
	}
	if !ok || loc1 == 0 {
		return nil, ErrNotFound
	}
	blk := poseidon.PtrFromLoc(m.heapID, loc1-1)
	n, err := t.ReadU64(blk, 0)
	if err != nil {
		return nil, err
	}
	out := make([]byte, n)
	if err := t.Read(blk, valueHeader, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Delete removes key by tombstoning its value (the tree has no physical
// delete; a zero location marks absence) and freeing the value block.
func (m *Map) Delete(t *poseidon.Thread, key uint64) error {
	h := m.handle(t)
	old, had, err := m.tree.Update(h, key, 0)
	if err != nil {
		return err
	}
	if !had || old == 0 {
		return ErrNotFound
	}
	return t.Free(poseidon.PtrFromLoc(m.heapID, old-1))
}

// Range visits keys in [from, to) in ascending order.
func (m *Map) Range(t *poseidon.Thread, from, to uint64, fn func(key uint64, value []byte) bool) error {
	h := m.handle(t)
	var visitErr error
	err := m.tree.Scan(h, from, to, func(key, loc1 uint64) bool {
		if loc1 == 0 {
			return true // deleted
		}
		blk := poseidon.PtrFromLoc(m.heapID, loc1-1)
		n, err := t.ReadU64(blk, 0)
		if err != nil {
			visitErr = err
			return false
		}
		val := make([]byte, n)
		if err := t.Read(blk, valueHeader, val); err != nil {
			visitErr = err
			return false
		}
		return fn(key, val)
	})
	if err != nil {
		return err
	}
	return visitErr
}
