package pstruct

import (
	"errors"
	"fmt"

	"poseidon"
)

// Queue is a persistent FIFO of fixed-size elements, stored in chained
// segments. Enqueues publish with a single atomic index store after the
// element persists; segment growth uses the same pending-slot protocol as
// List, so a crash at any point leaves the queue either before or after
// the operation — never torn, never leaking a segment.
//
// Queue anchor block layout (64 B):
//
//	+0  headSeg  loc+1 of the segment holding the oldest element
//	+8  headIdx  index of the oldest element within headSeg
//	+16 tailSeg  loc+1 of the segment being filled
//	+24 tailIdx  index one past the newest element within tailSeg
//	+32 elemSize fixed element size in bytes
//	+40 pending  loc+1 of a segment being linked (crash recovery hook)
//	+48 count    live element count
//
// Segment layout: +0 next (loc+1), +8 reserved, +16… elements.
const (
	qOffHeadSeg  = 0
	qOffHeadIdx  = 8
	qOffTailSeg  = 16
	qOffTailIdx  = 24
	qOffElemSize = 32
	qOffPending  = 40
	qOffCount    = 48

	segHeader      = 16
	segTargetBytes = 4096
	maxElemSize    = 64 << 10
)

// Queue errors.
var (
	// ErrBadElemSize reports an unusable element size.
	ErrBadElemSize = errors.New("pstruct: bad element size")
	// ErrWrongElemSize reports an element whose length does not match the
	// queue's fixed size.
	ErrWrongElemSize = errors.New("pstruct: element size mismatch")
)

// Queue is the persistent FIFO handle.
type Queue struct {
	heapID   uint64
	anchor   poseidon.NVMPtr
	elemSize uint64
	perSeg   uint64
}

func segBytes(elemSize uint64) (perSeg, size uint64) {
	perSeg = (segTargetBytes - segHeader) / elemSize
	if perSeg == 0 {
		perSeg = 1
	}
	return perSeg, segHeader + perSeg*elemSize
}

// NewQueue allocates a queue of fixed elemSize-byte elements. Anchor()
// locates it after a restart.
func NewQueue(t *poseidon.Thread, elemSize uint64) (*Queue, error) {
	if elemSize == 0 || elemSize > maxElemSize {
		return nil, fmt.Errorf("%w: %d", ErrBadElemSize, elemSize)
	}
	anchor, err := t.Alloc(64)
	if err != nil {
		return nil, err
	}
	q := &Queue{heapID: t.Heap().HeapID(), anchor: anchor, elemSize: elemSize}
	q.perSeg, _ = segBytes(elemSize)
	seg, err := q.newSegment(t)
	if err != nil {
		return nil, err
	}
	fields := map[uint64]uint64{
		qOffHeadSeg:  seg.Loc() + 1,
		qOffHeadIdx:  0,
		qOffTailSeg:  seg.Loc() + 1,
		qOffTailIdx:  0,
		qOffElemSize: elemSize,
		qOffPending:  0,
		qOffCount:    0,
	}
	for off, v := range fields {
		if err := t.WriteU64(anchor, off, v); err != nil {
			return nil, err
		}
	}
	if err := t.Flush(anchor, 0, 64); err != nil {
		return nil, err
	}
	return q, nil
}

// OpenQueue reattaches to an anchored queue and resolves any segment link
// a crash interrupted.
func OpenQueue(t *poseidon.Thread, anchor poseidon.NVMPtr) (*Queue, error) {
	q := &Queue{heapID: t.Heap().HeapID(), anchor: anchor}
	var err error
	if q.elemSize, err = t.ReadU64(anchor, qOffElemSize); err != nil {
		return nil, err
	}
	if q.elemSize == 0 || q.elemSize > maxElemSize {
		return nil, fmt.Errorf("%w: corrupt anchor (%d)", ErrBadElemSize, q.elemSize)
	}
	q.perSeg, _ = segBytes(q.elemSize)
	return q, q.recover(t)
}

// Anchor returns the queue's persistent location.
func (q *Queue) Anchor() poseidon.NVMPtr { return q.anchor }

func (q *Queue) ptr(loc1 uint64) poseidon.NVMPtr {
	return poseidon.PtrFromLoc(q.heapID, loc1-1)
}

func (q *Queue) newSegment(t *poseidon.Thread) (poseidon.NVMPtr, error) {
	_, size := segBytes(q.elemSize)
	seg, err := t.Alloc(size)
	if err != nil {
		return poseidon.NVMPtr{}, err
	}
	if err := t.WriteU64(seg, 0, 0); err != nil {
		return poseidon.NVMPtr{}, err
	}
	if err := t.Flush(seg, 0, segHeader); err != nil {
		return poseidon.NVMPtr{}, err
	}
	return seg, nil
}

// recover resolves the pending segment: linked ⇒ complete the tail
// advance; unlinked ⇒ free the orphan.
func (q *Queue) recover(t *poseidon.Thread) error {
	pending, err := t.ReadU64(q.anchor, qOffPending)
	if err != nil || pending == 0 {
		return err
	}
	tailSeg, err := t.ReadU64(q.anchor, qOffTailSeg)
	if err != nil {
		return err
	}
	next, err := t.ReadU64(q.ptr(tailSeg), 0)
	if err != nil {
		return err
	}
	if next == pending {
		// The link published: finish the advance.
		if err := t.WriteU64(q.anchor, qOffTailSeg, pending); err != nil {
			return err
		}
		if err := t.WriteU64(q.anchor, qOffTailIdx, 0); err != nil {
			return err
		}
	} else if err := t.Free(q.ptr(pending)); err != nil &&
		!errors.Is(err, poseidon.ErrDoubleFree) && !errors.Is(err, poseidon.ErrInvalidFree) {
		return err
	}
	if err := t.WriteU64(q.anchor, qOffPending, 0); err != nil {
		return err
	}
	return t.Flush(q.anchor, 0, 64)
}

// Enqueue appends one element (len(elem) must equal the queue's element
// size).
func (q *Queue) Enqueue(t *poseidon.Thread, elem []byte) error {
	if uint64(len(elem)) != q.elemSize {
		return fmt.Errorf("%w: got %d, queue holds %d-byte elements",
			ErrWrongElemSize, len(elem), q.elemSize)
	}
	tailSeg, err := t.ReadU64(q.anchor, qOffTailSeg)
	if err != nil {
		return err
	}
	tailIdx, err := t.ReadU64(q.anchor, qOffTailIdx)
	if err != nil {
		return err
	}
	if tailIdx == q.perSeg {
		// Grow: pending → link → advance, each step recoverable.
		seg, err := q.newSegment(t)
		if err != nil {
			return err
		}
		loc1 := seg.Loc() + 1
		if err := t.WriteU64(q.anchor, qOffPending, loc1); err != nil {
			return err
		}
		if err := t.Flush(q.anchor, qOffPending, 8); err != nil {
			return err
		}
		if err := t.WriteU64(q.ptr(tailSeg), 0, loc1); err != nil { // publish
			return err
		}
		if err := t.Flush(q.ptr(tailSeg), 0, 8); err != nil {
			return err
		}
		if err := t.WriteU64(q.anchor, qOffTailSeg, loc1); err != nil {
			return err
		}
		if err := t.WriteU64(q.anchor, qOffTailIdx, 0); err != nil {
			return err
		}
		if err := t.WriteU64(q.anchor, qOffPending, 0); err != nil {
			return err
		}
		if err := t.Flush(q.anchor, 0, 64); err != nil {
			return err
		}
		tailSeg, tailIdx = loc1, 0
	}
	// Element first, then the atomic index publish.
	off := segHeader + tailIdx*q.elemSize
	if err := t.Write(q.ptr(tailSeg), off, elem); err != nil {
		return err
	}
	if err := t.Flush(q.ptr(tailSeg), off, q.elemSize); err != nil {
		return err
	}
	count, err := t.ReadU64(q.anchor, qOffCount)
	if err != nil {
		return err
	}
	if err := t.WriteU64(q.anchor, qOffTailIdx, tailIdx+1); err != nil {
		return err
	}
	if err := t.WriteU64(q.anchor, qOffCount, count+1); err != nil {
		return err
	}
	// One cacheline: the index and count persist as a unit.
	return t.Flush(q.anchor, 0, 64)
}

// Dequeue removes and returns the oldest element.
func (q *Queue) Dequeue(t *poseidon.Thread) ([]byte, bool, error) {
	headSeg, err := t.ReadU64(q.anchor, qOffHeadSeg)
	if err != nil {
		return nil, false, err
	}
	headIdx, err := t.ReadU64(q.anchor, qOffHeadIdx)
	if err != nil {
		return nil, false, err
	}
	tailSeg, err := t.ReadU64(q.anchor, qOffTailSeg)
	if err != nil {
		return nil, false, err
	}
	tailIdx, err := t.ReadU64(q.anchor, qOffTailIdx)
	if err != nil {
		return nil, false, err
	}
	if headSeg == tailSeg && headIdx == tailIdx {
		return nil, false, nil // empty
	}
	if headIdx == q.perSeg {
		// The head segment is drained: advance to its successor and free
		// it. (A crash after the advance but before the free leaks one
		// segment; poseidon-fsck surfaces it.)
		next, err := t.ReadU64(q.ptr(headSeg), 0)
		if err != nil {
			return nil, false, err
		}
		if next == 0 {
			return nil, false, errors.New("pstruct: corrupt queue (drained head has no successor)")
		}
		if err := t.WriteU64(q.anchor, qOffHeadSeg, next); err != nil {
			return nil, false, err
		}
		if err := t.WriteU64(q.anchor, qOffHeadIdx, 0); err != nil {
			return nil, false, err
		}
		if err := t.Flush(q.anchor, 0, 64); err != nil {
			return nil, false, err
		}
		if err := t.Free(q.ptr(headSeg)); err != nil {
			return nil, false, err
		}
		return q.Dequeue(t)
	}
	out := make([]byte, q.elemSize)
	if err := t.Read(q.ptr(headSeg), segHeader+headIdx*q.elemSize, out); err != nil {
		return nil, false, err
	}
	count, err := t.ReadU64(q.anchor, qOffCount)
	if err != nil {
		return nil, false, err
	}
	if err := t.WriteU64(q.anchor, qOffHeadIdx, headIdx+1); err != nil {
		return nil, false, err
	}
	if count > 0 {
		if err := t.WriteU64(q.anchor, qOffCount, count-1); err != nil {
			return nil, false, err
		}
	}
	if err := t.Flush(q.anchor, 0, 64); err != nil {
		return nil, false, err
	}
	return out, true, nil
}

// Len returns the element count.
func (q *Queue) Len(t *poseidon.Thread) (uint64, error) {
	return t.ReadU64(q.anchor, qOffCount)
}
