package pstruct

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"poseidon"
	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

func newHeapThread(t *testing.T) (*poseidon.Heap, *poseidon.Thread) {
	t.Helper()
	h, err := poseidon.Create(poseidon.Options{
		Subheaps:        2,
		SubheapUserSize: 8 << 20,
		SubheapMetaSize: 2 << 20,
		UndoLogSize:     64 << 10,
		MaxThreads:      8,
		CrashTracking:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	th, err := h.Thread()
	if err != nil {
		t.Fatal(err)
	}
	return h, th
}

func TestListPushWalkPop(t *testing.T) {
	_, th := newHeapThread(t)
	defer th.Close()
	l, err := NewList(th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.PushFront(th, []byte(fmt.Sprintf("item-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if n, _ := l.Len(th); n != 10 {
		t.Fatalf("len = %d", n)
	}
	var got []string
	if err := l.Walk(th, func(data []byte) bool {
		got = append(got, string(data))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "item-9" || got[9] != "item-0" {
		t.Fatalf("walk = %v", got)
	}
	data, ok, err := l.PopFront(th)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if string(data) != "item-9" {
		t.Fatalf("pop = %q", data)
	}
	if n, _ := l.Len(th); n != 9 {
		t.Fatalf("len after pop = %d", n)
	}
	// Drain.
	for {
		_, ok, err := l.PopFront(th)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if n, _ := l.Len(th); n != 0 {
		t.Fatalf("len after drain = %d", n)
	}
}

func TestListEmptyPop(t *testing.T) {
	_, th := newHeapThread(t)
	defer th.Close()
	l, err := NewList(th)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := l.PopFront(th); ok || err != nil {
		t.Fatalf("pop of empty: ok=%v err=%v", ok, err)
	}
}

func TestListSurvivesRestart(t *testing.T) {
	h, th := newHeapThread(t)
	l, err := NewList(th)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.PushFront(th, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.SetRoot(l.Anchor()); err != nil {
		t.Fatal(err)
	}
	th.Close()

	// Crash and reload.
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := facade(t, ch)
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := OpenList(th2, root)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l2.Len(th2); n != 5 {
		t.Fatalf("len after restart = %d", n)
	}
	var first []byte
	if err := l2.Walk(th2, func(d []byte) bool { first = d; return false }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, []byte{4}) {
		t.Fatalf("head = %v", first)
	}
}

// facade wraps a core.Heap back into the public type for the restart test.
func facade(t *testing.T, ch *core.Heap) *poseidon.Heap {
	t.Helper()
	return &poseidon.Heap{Heap: ch}
}

// Crash between the pending-slot write and the publish: recovery must free
// the orphan node and leave the list exactly as before the push.
func TestListRecoverUnpublishedPush(t *testing.T) {
	h, th := newHeapThread(t)
	l, err := NewList(th)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.PushFront(th, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(l.Anchor()); err != nil {
		t.Fatal(err)
	}
	// Simulate the torn push by hand: allocate a node, store it in the
	// pending slot, "crash" before the head update.
	orphan, err := th.Alloc(nodeHeader + 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(l.Anchor(), offPending, orphan.Loc()+1); err != nil {
		t.Fatal(err)
	}
	if err := th.Flush(l.Anchor(), offPending, 8); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := facade(t, ch)
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := OpenList(th2, root)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l2.Len(th2); n != 1 {
		t.Fatalf("len = %d, want 1 (orphan rolled back)", n)
	}
	// The orphan node was freed by recovery: freeing again double-frees.
	if err := th2.Free(orphan); !errors.Is(err, poseidon.ErrDoubleFree) {
		t.Fatalf("orphan not freed by list recovery: %v", err)
	}
	// And the pending slot is clear: another push works.
	if err := l2.PushFront(th2, []byte("after")); err != nil {
		t.Fatal(err)
	}
}

// Crash after the publish but before the cleanup: recovery must keep the
// node and fix the length.
func TestListRecoverPublishedPush(t *testing.T) {
	h, th := newHeapThread(t)
	l, err := NewList(th)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.PushFront(th, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := h.SetRoot(l.Anchor()); err != nil {
		t.Fatal(err)
	}
	// Simulate: full push, then re-set pending as if cleanup was lost.
	if err := l.PushFront(th, []byte("two")); err != nil {
		t.Fatal(err)
	}
	head, err := th.ReadU64(l.Anchor(), offHead)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.WriteU64(l.Anchor(), offPending, head); err != nil {
		t.Fatal(err)
	}
	if err := th.Flush(l.Anchor(), offPending, 8); err != nil {
		t.Fatal(err)
	}
	th.Close()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictNone}); err != nil {
		t.Fatal(err)
	}
	ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
	if err != nil {
		t.Fatal(err)
	}
	h2 := facade(t, ch)
	th2, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	defer th2.Close()
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := OpenList(th2, root)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l2.Len(th2); n != 2 {
		t.Fatalf("len = %d, want 2 (published push kept)", n)
	}
	var heads []string
	if err := l2.Walk(th2, func(d []byte) bool { heads = append(heads, string(d)); return true }); err != nil {
		t.Fatal(err)
	}
	if len(heads) != 2 || heads[0] != "two" || heads[1] != "one" {
		t.Fatalf("walk = %v", heads)
	}
}

func TestListRejectsHugePayload(t *testing.T) {
	_, th := newHeapThread(t)
	defer th.Close()
	l, err := NewList(th)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.PushFront(th, make([]byte, maxPayloadLen+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestMapPutGetDeleteRange(t *testing.T) {
	_, th := newHeapThread(t)
	defer th.Close()
	m, err := NewMap(th)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 200; i++ {
		if err := m.Put(th, i, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := m.Get(th, 42)
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "v42" {
		t.Fatalf("get = %q", v)
	}
	// Overwrite.
	if err := m.Put(th, 42, []byte("replaced")); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(th, 42); string(v) != "replaced" {
		t.Fatalf("get after put = %q", v)
	}
	// Delete.
	if err := m.Delete(th, 42); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get(th, 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
	if err := m.Delete(th, 42); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if _, err := m.Get(th, 9999); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	// Range skips the deleted key.
	var keys []uint64
	err = m.Range(th, 40, 46, func(k uint64, v []byte) bool {
		keys = append(keys, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{40, 41, 43, 44, 45}
	if len(keys) != len(want) {
		t.Fatalf("range = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("range = %v", keys)
		}
	}
}

func TestMapHandleAdapters(t *testing.T) {
	// The Handle adapter is mostly exercised through the tree; cover the
	// remaining delegations directly.
	_, th := newHeapThread(t)
	defer th.Close()
	m, err := NewMap(th)
	if err != nil {
		t.Fatal(err)
	}
	h := m.handle(th)
	p, err := h.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Write(p, 0, []byte("adapter")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if err := h.Read(p, 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "adapter" {
		t.Fatalf("read %q", buf)
	}
	if err := h.Persist(p, 0, 7); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	h.Close()
}
