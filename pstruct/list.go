// Package pstruct provides persistent data structures built on the public
// Poseidon API — the layer an application would write on top of a
// persistent allocator. It demonstrates (and tests) the crash-safe
// publication idioms the allocator enables:
//
//   - List: a persistent singly-linked list whose pushes are
//     failure-atomic via a pending-slot protocol (no node is ever leaked
//     or dangling, whatever the crash point).
//   - Queue: a persistent FIFO of fixed-size elements in chained segments,
//     publishing each enqueue with one atomic index store.
//   - Map: a persistent ordered map (the FAST-FAIR B+-tree) storing
//     arbitrary byte values.
//
// All structures are anchored at an NVMPtr the application stores —
// typically via Heap.SetRoot — and reopened after a restart.
package pstruct

import (
	"errors"
	"fmt"

	"poseidon"
)

// List anchor block layout (64 B):
//
//	+0  head    loc+1 (0 = empty)
//	+8  pending loc+1 of a node being published (0 = none)
//	+16 length
//
// Node layout: +0 next (loc+1), +8 payload length, +16… payload.
const (
	anchorSize    = 64
	nodeHeader    = 16
	offHead       = 0
	offPending    = 8
	offLen        = 16
	maxPayloadLen = 1 << 20
)

// ErrPayloadTooLarge reports an oversized list payload.
var ErrPayloadTooLarge = errors.New("pstruct: payload too large")

// List is a persistent singly-linked list (LIFO). All methods take the
// calling goroutine's Thread. A List is not internally synchronised;
// callers coordinate concurrent access like for any shared structure.
type List struct {
	heapID uint64
	anchor poseidon.NVMPtr
}

// NewList allocates a list anchor. Store Anchor() somewhere reachable
// (e.g. the heap root) to find the list after a restart.
func NewList(t *poseidon.Thread) (*List, error) {
	anchor, err := t.Alloc(anchorSize)
	if err != nil {
		return nil, err
	}
	for _, off := range []uint64{offHead, offPending, offLen} {
		if err := t.WriteU64(anchor, off, 0); err != nil {
			return nil, err
		}
	}
	if err := t.Flush(anchor, 0, anchorSize); err != nil {
		return nil, err
	}
	return &List{heapID: t.Heap().HeapID(), anchor: anchor}, nil
}

// OpenList reattaches to an anchored list after a restart and completes or
// rolls back any push that was interrupted by a crash.
func OpenList(t *poseidon.Thread, anchor poseidon.NVMPtr) (*List, error) {
	l := &List{heapID: t.Heap().HeapID(), anchor: anchor}
	return l, l.recover(t)
}

// Anchor returns the persistent location of the list.
func (l *List) Anchor() poseidon.NVMPtr { return l.anchor }

func (l *List) ptr(loc1 uint64) poseidon.NVMPtr {
	return poseidon.PtrFromLoc(l.heapID, loc1-1)
}

// recover resolves the pending slot: if the crash happened after the head
// was published, the push completed — just clear pending; otherwise the
// node is unreachable and is freed (no leak, no dangling pointer).
func (l *List) recover(t *poseidon.Thread) error {
	pending, err := t.ReadU64(l.anchor, offPending)
	if err != nil {
		return err
	}
	if pending == 0 {
		return nil
	}
	head, err := t.ReadU64(l.anchor, offHead)
	if err != nil {
		return err
	}
	if head == pending {
		// Published: the push completed; only the cleanup was lost. The
		// length may not have been bumped yet — recount cheaply by
		// trusting the stored length only up to this ambiguity.
		n := uint64(0)
		if err := l.Walk(t, func([]byte) bool { n++; return true }); err != nil {
			return err
		}
		if err := t.WriteU64(l.anchor, offLen, n); err != nil {
			return err
		}
	} else {
		// Unpublished: free the orphan node.
		if err := t.Free(l.ptr(pending)); err != nil &&
			!errors.Is(err, poseidon.ErrDoubleFree) && !errors.Is(err, poseidon.ErrInvalidFree) {
			return err
		}
	}
	if err := t.WriteU64(l.anchor, offPending, 0); err != nil {
		return err
	}
	return t.Flush(l.anchor, offPending, 8)
}

// PushFront prepends data, failure-atomically:
//
//  1. allocate and fill the node (crash ⇒ allocator-level cleanup only);
//  2. persist the node in the pending slot (crash ⇒ recover frees it);
//  3. persist head = node — the atomic publish point;
//  4. clear pending, bump length.
func (l *List) PushFront(t *poseidon.Thread, data []byte) error {
	if uint64(len(data)) > maxPayloadLen {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooLarge, len(data))
	}
	head, err := t.ReadU64(l.anchor, offHead)
	if err != nil {
		return err
	}
	node, err := t.Alloc(nodeHeader + uint64(len(data)))
	if err != nil {
		return err
	}
	if err := t.WriteU64(node, 0, head); err != nil {
		return err
	}
	if err := t.WriteU64(node, 8, uint64(len(data))); err != nil {
		return err
	}
	if err := t.Write(node, nodeHeader, data); err != nil {
		return err
	}
	if err := t.Flush(node, 0, nodeHeader+uint64(len(data))); err != nil {
		return err
	}
	loc1 := node.Loc() + 1
	// Stage 2: pending slot (the recovery hook).
	if err := t.WriteU64(l.anchor, offPending, loc1); err != nil {
		return err
	}
	if err := t.Flush(l.anchor, offPending, 8); err != nil {
		return err
	}
	// Stage 3: publish.
	if err := t.WriteU64(l.anchor, offHead, loc1); err != nil {
		return err
	}
	if err := t.Flush(l.anchor, offHead, 8); err != nil {
		return err
	}
	// Stage 4: cleanup.
	n, err := t.ReadU64(l.anchor, offLen)
	if err != nil {
		return err
	}
	if err := t.WriteU64(l.anchor, offLen, n+1); err != nil {
		return err
	}
	if err := t.WriteU64(l.anchor, offPending, 0); err != nil {
		return err
	}
	return t.Flush(l.anchor, offLen, 16)
}

// PopFront removes and returns the first payload. The unlink persists
// before the node frees, so a crash can leak at most one node (recovered
// heaps report it via fsck; a pending-slot protocol symmetric to PushFront
// could remove even that, at the cost of a second barrier).
func (l *List) PopFront(t *poseidon.Thread) ([]byte, bool, error) {
	head, err := t.ReadU64(l.anchor, offHead)
	if err != nil || head == 0 {
		return nil, false, err
	}
	node := l.ptr(head)
	next, err := t.ReadU64(node, 0)
	if err != nil {
		return nil, false, err
	}
	data, err := l.payload(t, node)
	if err != nil {
		return nil, false, err
	}
	if err := t.WriteU64(l.anchor, offHead, next); err != nil {
		return nil, false, err
	}
	n, err := t.ReadU64(l.anchor, offLen)
	if err != nil {
		return nil, false, err
	}
	if n > 0 {
		if err := t.WriteU64(l.anchor, offLen, n-1); err != nil {
			return nil, false, err
		}
	}
	if err := t.Flush(l.anchor, offHead, 24); err != nil {
		return nil, false, err
	}
	if err := t.Free(node); err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Len returns the stored element count.
func (l *List) Len(t *poseidon.Thread) (uint64, error) {
	return t.ReadU64(l.anchor, offLen)
}

func (l *List) payload(t *poseidon.Thread, node poseidon.NVMPtr) ([]byte, error) {
	n, err := t.ReadU64(node, 8)
	if err != nil {
		return nil, err
	}
	if n > maxPayloadLen {
		return nil, fmt.Errorf("pstruct: corrupt node payload length %d", n)
	}
	data := make([]byte, n)
	if err := t.Read(node, nodeHeader, data); err != nil {
		return nil, err
	}
	return data, nil
}

// Walk visits payloads front to back until fn returns false.
func (l *List) Walk(t *poseidon.Thread, fn func(data []byte) bool) error {
	loc1, err := t.ReadU64(l.anchor, offHead)
	if err != nil {
		return err
	}
	for steps := 0; loc1 != 0; steps++ {
		if steps > 1<<24 {
			return errors.New("pstruct: cyclic list")
		}
		node := l.ptr(loc1)
		data, err := l.payload(t, node)
		if err != nil {
			return err
		}
		if !fn(data) {
			return nil
		}
		if loc1, err = t.ReadU64(node, 0); err != nil {
			return err
		}
	}
	return nil
}
