package pstruct

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"poseidon"
	"poseidon/internal/core"
	"poseidon/internal/nvm"
)

// These sweeps kill the device at EVERY store boundary of a structure
// operation, crash with adversarial eviction, recover the heap and the
// structure, and assert the operation was atomic: fully applied or fully
// rolled back, with no leaked or dangling node at any crash point.

func reopenList(t *testing.T, h *poseidon.Heap, seed int64) (*poseidon.Heap, *poseidon.Thread, *List) {
	t.Helper()
	if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: seed}); err != nil {
		t.Fatal(err)
	}
	ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
	if err != nil {
		t.Fatalf("heap recovery: %v", err)
	}
	h2 := facade(t, ch)
	th, err := h2.Thread()
	if err != nil {
		t.Fatal(err)
	}
	root, err := h2.Root()
	if err != nil {
		t.Fatal(err)
	}
	l, err := OpenList(th, root)
	if err != nil {
		t.Fatalf("list recovery: %v", err)
	}
	return h2, th, l
}

func TestListPushCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}
	for budget := int64(1); budget < 40; budget++ {
		budget := budget
		t.Run(fmt.Sprintf("failAfter=%d", budget), func(t *testing.T) {
			h, th := newHeapThread(t)
			l, err := NewList(th)
			if err != nil {
				t.Fatal(err)
			}
			if err := l.PushFront(th, []byte("base")); err != nil {
				t.Fatal(err)
			}
			if err := h.SetRoot(l.Anchor()); err != nil {
				t.Fatal(err)
			}
			h.Device().FailAfter(budget)
			pushErr := l.PushFront(th, []byte("new!"))
			h.Device().DisarmFailpoint()
			th.Close()

			_, th2, l2 := reopenList(t, h, budget*131)
			defer th2.Close()
			n, err := l2.Len(th2)
			if err != nil {
				t.Fatal(err)
			}
			var items []string
			if err := l2.Walk(th2, func(d []byte) bool {
				items = append(items, string(d))
				return true
			}); err != nil {
				t.Fatalf("walk after crash: %v", err)
			}
			switch {
			case pushErr == nil:
				// The push completed before the budget ran out — wait: the
				// device may have died after the publish; either way the
				// walk must be consistent with the length.
				if len(items) != int(n) {
					t.Fatalf("len %d vs walk %d", n, len(items))
				}
			case errors.Is(pushErr, nvm.ErrDeviceFailed):
				// Torn push: the list must hold either just "base" or
				// "new!"+"base" — nothing else, in order.
				switch len(items) {
				case 1:
					if items[0] != "base" {
						t.Fatalf("items = %v", items)
					}
				case 2:
					if items[0] != "new!" || items[1] != "base" {
						t.Fatalf("items = %v", items)
					}
				default:
					t.Fatalf("items = %v", items)
				}
				if int(n) != len(items) {
					t.Fatalf("len %d vs walk %d", n, len(items))
				}
			default:
				t.Fatalf("push error: %v", pushErr)
			}
			// The heap itself is consistent (no leaked/dangling node
			// would survive Check + a further push).
			if err := l2.PushFront(th2, []byte("after")); err != nil {
				t.Fatalf("push after recovery: %v", err)
			}
		})
	}
}

func TestQueueEnqueueCrashSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep is slow")
	}
	for budget := int64(1); budget < 50; budget++ {
		budget := budget
		t.Run(fmt.Sprintf("failAfter=%d", budget), func(t *testing.T) {
			h, th := newHeapThread(t)
			q, err := NewQueue(th, 16)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.SetRoot(q.Anchor()); err != nil {
				t.Fatal(err)
			}
			// Fill the first segment completely so the probed enqueue
			// exercises the grow protocol too.
			for i := uint64(0); i < q.perSeg; i++ {
				if err := q.Enqueue(th, elem(i)); err != nil {
					t.Fatal(err)
				}
			}
			h.Device().FailAfter(budget)
			enqErr := q.Enqueue(th, elem(7777))
			h.Device().DisarmFailpoint()
			th.Close()

			if _, err := h.Device().Crash(nvm.CrashPolicy{Mode: nvm.EvictRandom, Prob: 0.5, Seed: budget * 37}); err != nil {
				t.Fatal(err)
			}
			ch, err := core.Load(h.Device(), core.Options{CrashTracking: true})
			if err != nil {
				t.Fatalf("heap recovery: %v", err)
			}
			h2 := facade(t, ch)
			th2, err := h2.Thread()
			if err != nil {
				t.Fatal(err)
			}
			defer th2.Close()
			root, err := h2.Root()
			if err != nil {
				t.Fatal(err)
			}
			q2, err := OpenQueue(th2, root)
			if err != nil {
				t.Fatalf("queue recovery: %v", err)
			}
			// Drain: the prefix must be exactly 0..perSeg-1, optionally
			// followed by 7777 iff the torn enqueue published.
			var got []uint64
			for {
				out, ok, err := q2.Dequeue(th2)
				if err != nil {
					t.Fatalf("dequeue after crash: %v", err)
				}
				if !ok {
					break
				}
				if len(out) != 16 {
					t.Fatalf("short element")
				}
				got = append(got, uint64(out[0])|uint64(out[1])<<8|uint64(out[2])<<16|uint64(out[3])<<24)
			}
			want := int(q.perSeg)
			if enqErr == nil {
				want++
			}
			if len(got) != want && len(got) != want+1 && len(got) != int(q.perSeg) {
				t.Fatalf("drained %d elements (budget %d, enqErr %v)", len(got), budget, enqErr)
			}
			for i := 0; i < int(q.perSeg) && i < len(got); i++ {
				if got[i] != uint64(i) {
					t.Fatalf("element %d = %d — FIFO order broken", i, got[i])
				}
			}
			if len(got) > int(q.perSeg) {
				if got[q.perSeg] != 7777 {
					t.Fatalf("published element = %d", got[q.perSeg])
				}
				if !bytes.Equal(elem(7777)[:4], []byte{0x61, 0x1e, 0, 0}) {
					t.Fatal("sanity")
				}
			}
			// Queue still functional.
			if err := q2.Enqueue(th2, elem(1)); err != nil {
				t.Fatalf("enqueue after recovery: %v", err)
			}
		})
	}
}
