# Developer entry points. Everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race bench figures examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The per-figure testing.B benchmarks (bounded sweeps), plus the magazine
# before/after baseline (locked path vs lock-free fast path), the
# parallel-recovery baseline (serial vs fanned-out load) and the combined-
# commit baseline (legacy vs flat-combined fence/flush traffic) as JSON.
bench:
	$(GO) test -bench=. -benchmem ./...
	$(GO) run ./cmd/poseidon-bench -fig mags -out BENCH_magazines.json
	$(GO) run ./cmd/poseidon-bench -fig recovery -out BENCH_recovery.json
	$(GO) run ./cmd/poseidon-bench -fig combine -out BENCH_combine.json

# Full figure regeneration (tables of Mops/sec vs threads + extras).
figures:
	$(GO) run ./cmd/poseidon-bench -fig all | tee bench_figures.txt

# Smoke-run every example (each cleans up after itself except the images
# they intentionally leave; remove those).
examples:
	$(GO) run ./examples/quickstart && $(GO) run ./examples/quickstart
	$(GO) run ./examples/kvstore
	$(GO) run ./examples/crash-recovery
	$(GO) run ./examples/txalloc
	$(GO) run ./examples/tasklist "try poseidon" && $(GO) run ./examples/tasklist
	rm -f heap.img tasks.img

clean:
	rm -f heap.img tasks.img test_output.txt bench_output.txt BENCH_magazines.json
