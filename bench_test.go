package poseidon

// The benchmark harness: one testing.B benchmark per figure of the paper's
// evaluation (§7), each sweeping the three allocators. `go test -bench .`
// runs a bounded version of every figure; cmd/poseidon-bench runs the full
// thread sweeps and prints the figures' data tables.
//
//	Figure 6  — BenchmarkFig6Micro:    100 allocs + 100 frees in random
//	            order, sizes 256 B … 512 KiB
//	Figure 7  — BenchmarkFig7Larson:   server-style cross-thread churn
//	Figure 8  — BenchmarkFig8Ackermann / Kruskal / NQueens
//	Figure 9  — BenchmarkFig9YCSBLoad / YCSBA (FAST-FAIR B+-tree)
//	Ablations — BenchmarkAblation*:    §4.7 design-choice costs
import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"poseidon/internal/alloc"
	"poseidon/internal/benchutil"
	"poseidon/internal/core"
	"poseidon/internal/fastfair"
	"poseidon/internal/larson"
	"poseidon/internal/workloads"
	"poseidon/internal/ycsb"
)

// benchThreads bounds the per-bench sweep so `go test -bench .` stays
// tractable; the cmd tool sweeps the paper's full 1…64.
func benchThreads() []int {
	max := runtime.GOMAXPROCS(0)
	out := []int{1}
	if max >= 4 {
		out = append(out, 4)
	}
	if max > 4 {
		out = append(out, max)
	}
	return out
}

func BenchmarkFig6Micro(b *testing.B) {
	sizes := []uint64{256, 1 << 10, 4 << 10, 128 << 10, 256 << 10, 512 << 10}
	for _, size := range sizes {
		for _, name := range benchutil.AllocatorNames {
			for _, threads := range benchThreads() {
				b.Run(fmt.Sprintf("size=%d/%s/threads=%d", size, name, threads), func(b *testing.B) {
					a, err := benchutil.NewAllocator(name, benchutil.Config{
						Threads:   threads,
						HeapBytes: benchutil.MicroHeapBytes(size, threads),
					})
					if err != nil {
						b.Fatal(err)
					}
					defer a.Close()
					rounds := b.N/(200*threads) + 1
					b.ResetTimer()
					ops, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
						return benchutil.MicroWorker(h, benchutil.MicroConfig{
							Size:   size,
							Rounds: rounds,
							Seed:   int64(w + 1),
						})
					})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(ops)/b.Elapsed().Seconds()/1e6, "Mops/s")
				})
			}
		}
	}
}

func BenchmarkFig7Larson(b *testing.B) {
	// Larson's rotating cross-thread frees are exactly the contention the
	// remote-free rings target, so Fig 7 also runs the rings-on variant.
	names := append(append([]string{}, benchutil.AllocatorNames...), benchutil.RingAllocatorName)
	for _, name := range names {
		for _, threads := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				a, err := benchutil.NewAllocator(name, benchutil.Config{
					Threads:   threads,
					HeapBytes: 64 << 20 * uint64(threads),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				roundOps := b.N/(2*threads) + 1
				b.ResetTimer()
				res, err := larson.Run(a, larson.Config{
					Threads:        threads,
					SlotsPerThread: 256,
					RoundOps:       roundOps,
					Rounds:         2,
					Seed:           1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.OpsPerSec()/1e6, "Mops/s")
			})
		}
	}
}

func benchFig8(b *testing.B, run func(h alloc.Handle, iters int) (uint64, error), heapPerThread uint64) {
	b.Helper()
	for _, name := range benchutil.AllocatorNames {
		for _, threads := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				a, err := benchutil.NewAllocator(name, benchutil.Config{
					Threads:   threads,
					HeapBytes: heapPerThread * uint64(threads),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				iters := b.N/threads + 1
				b.ResetTimer()
				ops, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
					return run(h, iters)
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(ops)/b.Elapsed().Seconds()/1e6, "Mops/s")
			})
		}
	}
}

func BenchmarkFig8Ackermann(b *testing.B) {
	// Paper: a 1 GiB memo region; scaled to 1 MiB per DESIGN.md §1.
	const region = 1 << 20
	benchFig8(b, func(h alloc.Handle, iters int) (uint64, error) {
		return workloads.Ackermann(h, region, iters)
	}, 8<<20)
}

func BenchmarkFig8Kruskal(b *testing.B) {
	benchFig8(b, func(h alloc.Handle, iters int) (uint64, error) {
		return workloads.Kruskal(h, iters, 7)
	}, 16<<20)
}

func BenchmarkFig8NQueens(b *testing.B) {
	benchFig8(b, func(h alloc.Handle, iters int) (uint64, error) {
		return workloads.NQueens(h, iters)
	}, 16<<20)
}

func BenchmarkFig9YCSBLoad(b *testing.B) {
	for _, name := range benchutil.AllocatorNames {
		for _, threads := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				// Load permanently allocates per insert; size the heap for
				// b.N (value block + amortised tree nodes ≈ 1 KiB each).
				heapBytes := uint64(b.N+10000) * 1024
				if heapBytes < 64<<20*uint64(threads) {
					heapBytes = 64 << 20 * uint64(threads)
				}
				a, err := benchutil.NewAllocator(name, benchutil.Config{
					Threads:   threads,
					HeapBytes: heapBytes,
				})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				h0, err := a.Thread(0)
				if err != nil {
					b.Fatal(err)
				}
				tree, err := fastfair.New(h0)
				if err != nil {
					b.Fatal(err)
				}
				per := uint64(b.N/threads + 1)
				b.ResetTimer()
				ops, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
					from := uint64(w) * per
					return ycsb.Load(tree, h, from, from+per)
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				h0.Close()
				b.ReportMetric(float64(ops)/b.Elapsed().Seconds()/1e6, "Mops/s")
			})
		}
	}
}

func BenchmarkFig9YCSBA(b *testing.B) {
	const loaded = 50000
	for _, name := range benchutil.AllocatorNames {
		for _, threads := range benchThreads() {
			b.Run(fmt.Sprintf("%s/threads=%d", name, threads), func(b *testing.B) {
				a, err := benchutil.NewAllocator(name, benchutil.Config{
					Threads:   threads,
					HeapBytes: 64 << 20 * uint64(threads),
				})
				if err != nil {
					b.Fatal(err)
				}
				defer a.Close()
				h0, err := a.Thread(0)
				if err != nil {
					b.Fatal(err)
				}
				tree, err := fastfair.New(h0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := ycsb.Load(tree, h0, 0, loaded); err != nil {
					b.Fatal(err)
				}
				per := uint64(b.N/threads + 1)
				b.ResetTimer()
				ops, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
					z := ycsb.NewZipf(int64(w+1), loaded, 0.99)
					rng := rand.New(rand.NewSource(int64(w + 100)))
					return ycsb.WorkloadA(tree, h, z, rng, per)
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				h0.Close()
				b.ReportMetric(float64(ops)/b.Elapsed().Seconds()/1e6, "Mops/s")
			})
		}
	}
}

// BenchmarkAblationProtection quantifies the §4.3 claim: MPK-guarded
// metadata costs almost nothing next to unprotected metadata, while
// mprotect-style page-table protection is ruinous.
func BenchmarkAblationProtection(b *testing.B) {
	modes := []struct {
		name string
		p    core.Protection
	}{
		{"mpk", core.ProtectMPK},
		{"none", core.ProtectNone},
		{"mprotect", core.ProtectMprotect},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			a, err := benchutil.NewAllocator("poseidon", benchutil.Config{
				Threads:    1,
				HeapBytes:  64 << 20,
				Protection: mode.p,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			h, err := a.Thread(0)
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			b.ResetTimer()
			if _, err := benchutil.MicroWorker(h, benchutil.MicroConfig{
				Size:   256,
				Rounds: b.N/200 + 1,
				Seed:   1,
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAblationSubheaps quantifies the §4.1 claim: per-CPU sub-heaps
// vs all threads contending on a single sub-heap.
func BenchmarkAblationSubheaps(b *testing.B) {
	threads := runtime.GOMAXPROCS(0)
	if threads < 2 {
		b.Skip("needs parallelism")
	}
	for _, subheaps := range []int{1, threads} {
		b.Run(fmt.Sprintf("subheaps=%d/threads=%d", subheaps, threads), func(b *testing.B) {
			a, err := alloc.NewPoseidon(core.Options{
				Subheaps:        subheaps,
				SubheapUserSize: 512 << 20 / uint64(subheaps),
				MaxThreads:      threads + 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer a.Close()
			rounds := b.N/(200*threads) + 1
			b.ResetTimer()
			ops, _, err := benchutil.RunParallel(a, threads, func(w int, h alloc.Handle) (uint64, error) {
				return benchutil.MicroWorker(h, benchutil.MicroConfig{Size: 256, Rounds: rounds, Seed: int64(w)})
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds()/1e6, "Mops/s")
		})
	}
}

// BenchmarkAblationTxAlloc measures the micro-log overhead of
// transactional allocation (§5.3) against singleton allocation.
func BenchmarkAblationTxAlloc(b *testing.B) {
	newHeap := func(b *testing.B) (*core.Heap, *core.Thread) {
		b.Helper()
		h, err := core.Create(core.Options{Subheaps: 1, SubheapUserSize: 64 << 20})
		if err != nil {
			b.Fatal(err)
		}
		th, err := h.Thread()
		if err != nil {
			b.Fatal(err)
		}
		return h, th
	}
	b.Run("singleton", func(b *testing.B) {
		_, th := newHeap(b)
		defer th.Close()
		ptrs := make([]core.NVMPtr, 0, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := th.Alloc(256)
			if err != nil {
				b.Fatal(err)
			}
			ptrs = append(ptrs, p)
			if len(ptrs) == 128 {
				for _, q := range ptrs {
					if err := th.Free(q); err != nil {
						b.Fatal(err)
					}
				}
				ptrs = ptrs[:0]
			}
		}
	})
	b.Run("transactional", func(b *testing.B) {
		_, th := newHeap(b)
		defer th.Close()
		ptrs := make([]core.NVMPtr, 0, 128)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p, err := th.TxAlloc(256, i%8 == 7) // commit every 8 allocs
			if err != nil {
				b.Fatal(err)
			}
			ptrs = append(ptrs, p)
			if len(ptrs) == 128 {
				for _, q := range ptrs {
					if err := th.Free(q); err != nil {
						b.Fatal(err)
					}
				}
				ptrs = ptrs[:0]
			}
		}
	})
}
